package scenario

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/iotrace"
)

// Outcome classifies how a run ended.
type Outcome string

// The three outcomes assertions can expect.
const (
	// OutcomeOK: the run completed and nothing was lost — failed attempts,
	// lost work, undrained burst bytes, unrepaired corruption and failed
	// operations are all zero. Faults the stack absorbed transparently
	// (failover reroutes, retries, parity repairs) do not demote a run.
	OutcomeOK Outcome = "ok"

	// OutcomeDegraded: the run completed, but paid — an attempt died, work
	// or burst-log bytes were lost, corruption went unrepaired, or requests
	// failed outright.
	OutcomeDegraded Outcome = "degraded"

	// OutcomeFailed: the run did not complete within its attempt budget.
	OutcomeFailed Outcome = "failed"
)

// Measurements are the quantities assertions bound, extracted from a
// resilient run's report.
type Measurements struct {
	Outcome              Outcome
	MakespanS            float64 // absolute completion including restarts
	P95ReadMs            float64 // p95 application-visible read latency (final attempt)
	CacheHitRatio        float64 // fleet-wide demand hit ratio (cache runs only)
	HasCache             bool
	LostBytes            int64 // burst-log bytes that died undrained
	FailedAttempts       int
	UnrepairedCorruption int
	FailedOps            int64 // chunks abandoned by failover/reliability
	PhysRequests         int64
	CompletionErr        string // the driver's error on a failed run

	// Replication/repair measurements (zero without the repair plane).
	HasReplication     bool
	Redundancy         int     // copies per chunk still intact at the end
	RepairTimeS        float64 // time-to-full-redundancy
	UnrestoredReplicas int64   // copies the repair daemon never restored
}

// Measure extracts the assertion inputs from a run. rr may carry a final
// report or not (max-attempts exhaustion); runErr is the driver's error.
func Measure(rr *core.ResilientReport, runErr error) Measurements {
	var m Measurements
	if runErr != nil {
		m.CompletionErr = runErr.Error()
	}
	if rr == nil {
		m.Outcome = OutcomeFailed
		return m
	}
	m.MakespanS = rr.Wall.Seconds()
	m.LostBytes = rr.BurstLostBytes
	for _, a := range rr.Attempts {
		if a.Failed {
			m.FailedAttempts++
		}
	}
	if rr.Final != nil {
		m.P95ReadMs = p95ReadMs(rr.Final.Events)
		if rr.Final.Cache != nil {
			m.HasCache = true
			m.CacheHitRatio = rr.Final.Cache.Total.HitRatio()
		}
		m.FailedOps = rr.Final.Failover.Failed
		if rr.Final.Integrity != nil {
			m.FailedOps += rr.Final.Integrity.Reliability.CorruptFailed +
				rr.Final.Integrity.Reliability.DeadlineExceeded
		}
		m.PhysRequests = rr.Final.PhysRequests
		m.UnrepairedCorruption = unrepaired(rr.Final)
		m.HasReplication = rr.Final.ReplicationFactor > 1
		m.Redundancy = rr.Final.ReplicationFactor
		if rr.Final.RepairEnabled() {
			st := rr.Final.Repair
			m.RepairTimeS = st.TimeToFullRedundancy().Seconds()
			m.UnrestoredReplicas = st.Abandoned + (st.LedgerPuts - st.LedgerDrains)
			if m.UnrestoredReplicas > 0 && m.Redundancy > 1 {
				// At least one chunk ends the run a copy short.
				m.Redundancy--
			}
		}
	}

	switch {
	case rr.Final == nil || runErr != nil:
		m.Outcome = OutcomeFailed
	case m.FailedAttempts > 0 || rr.LostWork > 0 || m.LostBytes > 0 ||
		m.UnrepairedCorruption > 0 || m.FailedOps > 0 || m.UnrestoredReplicas > 0:
		m.Outcome = OutcomeDegraded
	default:
		m.Outcome = OutcomeOK
	}
	return m
}

// unrepaired counts corruption that was never resolved: detected-but-stuck
// plus latent (never even detected).
func unrepaired(r *core.Report) int {
	if r.Integrity == nil {
		return 0
	}
	n := 0
	for _, c := range r.Integrity.ByClass() {
		n += c.Unrepairable + c.Latent
	}
	return n
}

// p95ReadMs computes the 95th-percentile duration of the trace's read-class
// operations, in milliseconds.
func p95ReadMs(events []iotrace.Event) float64 {
	var durs []float64
	for _, e := range events {
		if e.Op == iotrace.OpRead || e.Op == iotrace.OpAsyncRead {
			durs = append(durs, e.Duration().Seconds()*1e3)
		}
	}
	if len(durs) == 0 {
		return 0
	}
	sort.Float64s(durs)
	idx := int(math.Ceil(0.95*float64(len(durs)))) - 1
	if idx < 0 {
		idx = 0
	}
	return durs[idx]
}

// Check is one assertion's evaluation.
type Check struct {
	Name   string // the assertion key, e.g. "max_makespan_s"
	Bound  string // the configured bound, rendered
	Actual string // the measured value, rendered
	Pass   bool
}

// Evaluate checks every configured assertion against the measurements. A nil
// assertions section evaluates to an empty, passing list.
func (a *Assertions) Evaluate(m Measurements) []Check {
	if a == nil {
		return nil
	}
	var out []Check
	add := func(name, bound, actual string, pass bool) {
		out = append(out, Check{Name: name, Bound: bound, Actual: actual, Pass: pass})
	}
	if a.Expected != "" {
		add("expected", a.Expected, string(m.Outcome), Outcome(a.Expected) == m.Outcome)
	}
	if a.MaxMakespanS > 0 {
		add("max_makespan_s", fmt.Sprintf("%g", a.MaxMakespanS),
			fmt.Sprintf("%.3f", m.MakespanS), m.MakespanS <= a.MaxMakespanS)
	}
	if a.MinMakespanS > 0 {
		add("min_makespan_s", fmt.Sprintf("%g", a.MinMakespanS),
			fmt.Sprintf("%.3f", m.MakespanS), m.MakespanS >= a.MinMakespanS)
	}
	if a.MaxP95ReadMs > 0 {
		add("max_p95_read_ms", fmt.Sprintf("%g", a.MaxP95ReadMs),
			fmt.Sprintf("%.3f", m.P95ReadMs), m.P95ReadMs <= a.MaxP95ReadMs)
	}
	if a.MinCacheHitRatio > 0 {
		add("min_cache_hit_ratio", fmt.Sprintf("%g", a.MinCacheHitRatio),
			fmt.Sprintf("%.3f", m.CacheHitRatio),
			m.HasCache && m.CacheHitRatio >= a.MinCacheHitRatio)
	}
	if a.MaxLostBytes != nil {
		add("max_lost_bytes", fmt.Sprintf("%d", *a.MaxLostBytes),
			fmt.Sprintf("%d", m.LostBytes), m.LostBytes <= *a.MaxLostBytes)
	}
	if a.MaxFailedAttempts != nil {
		add("max_failed_attempts", fmt.Sprintf("%d", *a.MaxFailedAttempts),
			fmt.Sprintf("%d", m.FailedAttempts), m.FailedAttempts <= *a.MaxFailedAttempts)
	}
	if a.MaxPhysRequests > 0 {
		add("max_phys_requests", fmt.Sprintf("%d", a.MaxPhysRequests),
			fmt.Sprintf("%d", m.PhysRequests), m.PhysRequests <= a.MaxPhysRequests)
	}
	if a.MinRedundancy != nil {
		add("min_redundancy", fmt.Sprintf("%d", *a.MinRedundancy),
			fmt.Sprintf("%d", m.Redundancy), m.Redundancy >= *a.MinRedundancy)
	}
	if a.MaxRepairTimeS > 0 {
		add("max_repair_time_s", fmt.Sprintf("%g", a.MaxRepairTimeS),
			fmt.Sprintf("%.3f", m.RepairTimeS),
			m.RepairTimeS <= a.MaxRepairTimeS && m.UnrestoredReplicas == 0)
	}
	return out
}

// Passed reports whether every check holds.
func Passed(checks []Check) bool {
	for _, c := range checks {
		if !c.Pass {
			return false
		}
	}
	return true
}
