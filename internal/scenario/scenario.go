// Package scenario implements the declarative scenario DSL: YAML/JSON files
// describing a generated (possibly heterogeneous) fleet, a workload, a chaos
// schedule bound to the fault-injection machinery, and first-class assertions
// — so every cache/integrity/collective/burst/resilience what-if is a
// versioned, validated, replayable regression test instead of a bespoke
// flag incantation.
//
// A scenario file has up to seven sections:
//
//	name: cache-whatif            # identity
//	description: ...
//	seed: 7                       # one seed drives fleet gen + fault draws
//	workload:  {app, scale, policy, window_s}
//	fleet_gen: {compute_nodes, io_nodes, stripe_kb, templates, startup, cells, stagger_s}
//	features:  {cache, collective, sched, burst, integrity, reliability, failover}
//	chaos:     {window_s, events, exps, cascades, zone_outages, corrupt}
//	run:       {ckpt_interval, ckpt_bytes, restart_cost_s, max_attempts}
//	assertions: {expected, max_makespan_s, ...}
//
// Everything is optional except name and workload.app; an empty section
// selects the paper-faithful default, so the minimal scenario reproduces the
// flag-driven default run byte for byte.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/fault"
)

// Scenario is one parsed scenario file.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Seed drives every random choice the scenario makes: fleet template
	// draws, startup jitter, and the fault plan's materialization. Same
	// file + same seed = identical run.
	Seed uint64 `json:"seed,omitempty"`

	Workload   Workload    `json:"workload"`
	FleetGen   *FleetGen   `json:"fleet_gen,omitempty"`
	Features   Features    `json:"features,omitempty"`
	Chaos      Chaos       `json:"chaos,omitempty"`
	Run        RunPolicy   `json:"run,omitempty"`
	Assertions *Assertions `json:"assertions,omitempty"`

	// Path is the source file, for error messages; empty when parsed from
	// memory.
	Path string `json:"-"`

	// Shards is an execution parameter, not part of the file schema: the
	// CLI's -shards value bounding how many fleet cells run concurrently on
	// the sharded engine (0 = GOMAXPROCS, 1 = the serial oracle). Results
	// are byte-identical at every setting.
	Shards int `json:"-"`
}

// Workload selects the application, its scale, and the policy layer.
type Workload struct {
	App     string  `json:"app"`
	Scale   string  `json:"scale,omitempty"`    // "small" (default) or "paper"
	Policy  string  `json:"policy,omitempty"`   // "none" (default), "ppfs", "adaptive"
	WindowS float64 `json:"window_s,omitempty"` // time-window reduction width
}

// FleetGen generates the machine shape from weighted node templates instead
// of the paper's fixed homogeneous 128/16 configuration.
type FleetGen struct {
	ComputeNodes int        `json:"compute_nodes,omitempty"` // 0 = application default
	IONodes      int        `json:"io_nodes,omitempty"`      // 0 = paper's 16
	StripeKB     float64    `json:"stripe_kb,omitempty"`     // 0 = paper's 64
	Templates    []Template `json:"templates,omitempty"`
	Startup      *Startup   `json:"startup,omitempty"`

	// Cells replicates the generated machine: a fleet of this many
	// independent cells, each a complete mesh + PFS + application instance,
	// run concurrently on the sharded conservative-parallel engine. 0 or 1
	// keeps the single-machine shape. Multi-cell scenarios run a single
	// attempt per cell (no checkpoint/restart loop), so ckpt_interval must
	// stay 0.
	Cells int `json:"cells,omitempty"`

	// StaggerS is the launch delay between consecutive cells, modeling a
	// fleet scheduler dispatching jobs in sequence (with cells > 1).
	StaggerS float64 `json:"stagger_s,omitempty"`

	// ShardLayout partitions each machine internally across the
	// conservative fabric: "single" (the default) keeps a machine on one
	// engine; "split:N" places its I/O nodes round-robin on N server shards
	// with the compute partition on a frontend shard, every client↔I/O
	// request crossing shards as lookahead-bounded mail. Results are
	// byte-identical at every -shards worker bound for a fixed layout.
	// Split machines run a single attempt (no checkpoint/restart loop).
	ShardLayout string `json:"shard_layout,omitempty"`
}

// Template is one weighted node flavor. Disk and cache fields shape the I/O
// nodes it generates; burst_mb shapes the compute-node burst logs when the
// burst feature is on. Zero-valued fields keep the fleet-wide default.
type Template struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight,omitempty"` // relative share (default 1)
	Count  int     `json:"count,omitempty"`  // exact node count (overrides weight)

	DiskMBs     float64 `json:"disk_mb_s,omitempty"`    // array bandwidth, MB/s
	PositionMs  float64 `json:"position_ms,omitempty"`  // seek+rotation time
	DiskStreams int     `json:"disk_streams,omitempty"` // sequential-stream buffers
	CacheMB     float64 `json:"cache_mb,omitempty"`     // per-node cache capacity
	BurstMB     float64 `json:"burst_mb,omitempty"`     // per-node burst-log capacity
	Zone        int     `json:"zone,omitempty"`         // outage domain
}

// Startup describes how the I/O nodes come online. Every pattern except
// "instant" holds late nodes in an outage from t=0 until their start instant,
// so a scenario exercises the failover path exactly as a rolling fleet
// bring-up would.
type Startup struct {
	Pattern    string  `json:"pattern"`               // instant, linear, exponential, wave
	OverS      float64 `json:"over_s,omitempty"`      // ramp length (default 2s)
	Waves      int     `json:"waves,omitempty"`       // batches for "wave" (default 4)
	JitterFrac float64 `json:"jitter_frac,omitempty"` // seeded per-node jitter, fraction of over_s
}

// Features toggles the optional subsystems, mirroring the CLI flag groups.
type Features struct {
	Cache       *CacheFeature       `json:"cache,omitempty"`
	Collective  *CollectiveFeature  `json:"collective,omitempty"`
	Sched       string              `json:"sched,omitempty"` // fcfs, cscan, sstf, random
	Burst       *BurstFeature       `json:"burst,omitempty"`
	Integrity   *IntegrityFeature   `json:"integrity,omitempty"`
	Reliability *ReliabilityFeature `json:"reliability,omitempty"`
	Failover    *FailoverFeature    `json:"failover,omitempty"`
}

// CacheFeature mirrors -cache/-cache-mb/-prefetch/-flush-on-fail.
type CacheFeature struct {
	Enabled     bool    `json:"enabled"`
	MB          float64 `json:"mb,omitempty"`
	Prefetch    *bool   `json:"prefetch,omitempty"` // default true
	FlushOnFail bool    `json:"flush_on_fail,omitempty"`
}

// CollectiveFeature mirrors -collective/-aggregators.
type CollectiveFeature struct {
	Enabled     bool `json:"enabled"`
	Aggregators int  `json:"aggregators,omitempty"`
}

// BurstFeature mirrors -burst/-burst-mb/-burst-drain/-compress.
type BurstFeature struct {
	Enabled  bool    `json:"enabled"`
	MB       float64 `json:"mb,omitempty"`
	DrainMBs float64 `json:"drain_mb_s,omitempty"`
	Compress float64 `json:"compress,omitempty"`
}

// IntegrityFeature mirrors -scrub and enables the checksum layer.
type IntegrityFeature struct {
	Enabled bool `json:"enabled"`
	Scrub   bool `json:"scrub,omitempty"`
}

// ReliabilityFeature mirrors -deadline/-retries.
type ReliabilityFeature struct {
	Enabled   bool    `json:"enabled"`
	DeadlineS float64 `json:"deadline_s,omitempty"`
	Retries   int     `json:"retries,omitempty"`
}

// FailoverFeature mirrors -failover/-replicate plus the N-way replication
// controls (-rf/-placement-seed/-read-policy and the repair daemon flags).
type FailoverFeature struct {
	Enabled   bool `json:"enabled"`
	Replicate bool `json:"replicate,omitempty"`

	// Factor is the replication factor, 1..4 (0 defers to Replicate: 2 when
	// set, else 1). Replicas spread across the fleet templates' zones.
	Factor int `json:"factor,omitempty"`

	// PlacementSeed perturbs the within-zone order of the replica ring; 0
	// keeps index order (the legacy neighbour placement on one zone).
	PlacementSeed uint64 `json:"placement_seed,omitempty"`

	// ReadPolicy is primary-first (default), any-replica, or quorum.
	ReadPolicy string `json:"read_policy,omitempty"`

	// Repair enables the background repair control plane.
	Repair *RepairFeature `json:"repair,omitempty"`
}

// RepairFeature configures the replication repair daemon.
type RepairFeature struct {
	Enabled      bool    `json:"enabled"`
	BandwidthMBs float64 `json:"bandwidth_mb_s,omitempty"` // 0 = 32 MB/s default
	GiveUpS      float64 `json:"give_up_s,omitempty"`      // 0 = never give up
}

// Chaos binds the existing fault machinery. Field names match the legacy
// cmd/stress -config JSON schema, so a legacy chaos file is exactly this
// section at top level.
type Chaos struct {
	WindowS     float64        `json:"window_s,omitempty"` // corruption/scrub window (default 600)
	Events      []ChaosEvent   `json:"events,omitempty"`
	Exps        []ChaosExp     `json:"exps,omitempty"`
	Cascades    []ChaosCascade `json:"cascades,omitempty"`
	ZoneOutages []ZoneOutage   `json:"zone_outages,omitempty"`
	Corrupt     *Corrupt       `json:"corrupt,omitempty"`
}

// Empty reports whether the section schedules nothing.
func (c Chaos) Empty() bool {
	return len(c.Events) == 0 && len(c.Exps) == 0 && len(c.Cascades) == 0 &&
		len(c.ZoneOutages) == 0 && c.Corrupt == nil
}

// NodeRef targets a node: a concrete index, or "any" for a seeded random
// draw per failure (fault.AnyNode).
type NodeRef int

// UnmarshalJSON accepts a number or the string "any".
func (n *NodeRef) UnmarshalJSON(b []byte) error {
	s := strings.TrimSpace(string(b))
	if s == `"any"` || s == "-1" {
		*n = NodeRef(fault.AnyNode)
		return nil
	}
	var v int
	if err := json.Unmarshal(b, &v); err != nil {
		return fmt.Errorf("node must be an index or \"any\": %v", err)
	}
	*n = NodeRef(v)
	return nil
}

// MarshalJSON renders AnyNode back as "any".
func (n NodeRef) MarshalJSON() ([]byte, error) {
	if int(n) == fault.AnyNode {
		return []byte(`"any"`), nil
	}
	return json.Marshal(int(n))
}

// ChaosEvent is one scheduled fault (fault.Event with times in seconds).
type ChaosEvent struct {
	Kind      string  `json:"kind"`
	AtS       float64 `json:"at_s"`
	Node      NodeRef `json:"node"`
	DurationS float64 `json:"duration_s,omitempty"`
	Factor    float64 `json:"factor,omitempty"`
}

// ChaosExp is a Poisson failure process (fault.Exp in seconds).
type ChaosExp struct {
	Kind         string  `json:"kind"`
	MeanBetweenS float64 `json:"mean_between_s"`
	StartS       float64 `json:"start_s,omitempty"`
	EndS         float64 `json:"end_s"`
	Node         NodeRef `json:"node"`
	DurationS    float64 `json:"duration_s,omitempty"`
	Factor       float64 `json:"factor,omitempty"`
}

// ChaosCascade is a correlated multi-node failure (fault.Cascade in seconds).
type ChaosCascade struct {
	Kind      string  `json:"kind"`
	AtS       float64 `json:"at_s"`
	Nodes     int     `json:"nodes"`
	FirstNode NodeRef `json:"first_node"`
	SpacingS  float64 `json:"spacing_s,omitempty"`
	DurationS float64 `json:"duration_s,omitempty"`
	Factor    float64 `json:"factor,omitempty"`
}

// ZoneOutage fails every I/O node in one outage domain — the per-zone chaos
// the heterogeneous fleet templates define zones for. It expands to one
// event per member node, SpacingS apart in node order.
type ZoneOutage struct {
	Zone      int     `json:"zone"`
	AtS       float64 `json:"at_s"`
	DurationS float64 `json:"duration_s"`
	SpacingS  float64 `json:"spacing_s,omitempty"`
}

// Corrupt schedules silent data corruption; classes is a comma-separated
// list of bit-rot, torn-write, misdirected-write, or "all".
type Corrupt struct {
	Classes string `json:"classes"`
}

// RunPolicy is the resilience driver's configuration. The pointer fields
// distinguish "unset" (take the stress command's defaults: interval 2,
// restart cost 1.5 s) from an explicit zero.
type RunPolicy struct {
	CkptInterval *int     `json:"ckpt_interval,omitempty"` // 0 = no checkpoints
	CkptBytes    int64    `json:"ckpt_bytes,omitempty"`    // default 4096
	RestartCostS *float64 `json:"restart_cost_s,omitempty"`
	MaxAttempts  int      `json:"max_attempts,omitempty"` // default 8
}

// Assertions make a scenario an executable regression test: the run's
// verdict is PASS only when the outcome matches Expected and every bound
// holds. Zero-valued bounds are unchecked; the pointer bounds distinguish
// "unset" from "must be exactly zero".
type Assertions struct {
	// Expected classifies the run: "ok" (completed with no lost work),
	// "degraded" (completed, but attempts died, work or bytes were lost, or
	// corruption went unrepaired), or "failed" (did not complete).
	Expected string `json:"expected,omitempty"`

	MaxMakespanS float64 `json:"max_makespan_s,omitempty"`
	MinMakespanS float64 `json:"min_makespan_s,omitempty"`

	// MaxP95ReadMs bounds the 95th-percentile application-visible read
	// latency (read and async-read operations).
	MaxP95ReadMs float64 `json:"max_p95_read_ms,omitempty"`

	// MinCacheHitRatio bounds the fleet-wide demand hit ratio; requires the
	// cache feature.
	MinCacheHitRatio float64 `json:"min_cache_hit_ratio,omitempty"`

	// MaxLostBytes bounds burst-log bytes that died undrained (lost work a
	// node loss or failed attempt left in volatile logs).
	MaxLostBytes *int64 `json:"max_lost_bytes,omitempty"`

	// MaxFailedAttempts bounds restart-loop failures.
	MaxFailedAttempts *int `json:"max_failed_attempts,omitempty"`

	// MaxPhysRequests bounds the physical array request count (the quantity
	// caching and collective aggregation collapse).
	MaxPhysRequests int64 `json:"max_phys_requests,omitempty"`

	// MinRedundancy asserts the run ended with at least this many intact
	// copies of every chunk — it fails when the repair control plane left
	// replicas unrestored (abandoned or still queued). Requires failover
	// with a replication factor >= the bound.
	MinRedundancy *int `json:"min_redundancy,omitempty"`

	// MaxRepairTimeS bounds time-to-full-redundancy: how long after the
	// last outage ended the repair daemon needed to drain its ledger.
	MaxRepairTimeS float64 `json:"max_repair_time_s,omitempty"`
}

// Parse decodes a scenario from JSON or the YAML subset, detected by the
// first non-space byte, and validates it structurally.
func Parse(data []byte, path string) (*Scenario, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, loc(path, fmt.Errorf("empty scenario file"))
	}
	var jsonBytes []byte
	if trimmed[0] == '{' {
		jsonBytes = trimmed
	} else {
		tree, err := parseYAML(data)
		if err != nil {
			return nil, loc(path, err)
		}
		jsonBytes, err = json.Marshal(tree)
		if err != nil {
			return nil, loc(path, err)
		}
	}
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(jsonBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, loc(path, fmt.Errorf("schema: %v", friendlyDecodeError(err)))
	}
	s.Path = path
	if s.Name == "" {
		s.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	if err := s.Validate(); err != nil {
		return nil, loc(path, err)
	}
	return &s, nil
}

// Load reads and parses one scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data, path)
}

func loc(path string, err error) error {
	if path == "" {
		return err
	}
	return fmt.Errorf("%s: %w", path, err)
}

// friendlyDecodeError rewrites encoding/json's strict-mode errors into
// scenario-speak.
func friendlyDecodeError(err error) error {
	msg := err.Error()
	if strings.HasPrefix(msg, "json: unknown field ") {
		return fmt.Errorf("unknown field %s (check the section it is nested under)",
			strings.TrimPrefix(msg, "json: unknown field "))
	}
	return err
}
