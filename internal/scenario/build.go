package scenario

import (
	"fmt"

	"repro/internal/apps/escat"
	"repro/internal/apps/htf"
	"repro/internal/apps/render"
	"repro/internal/burst"
	"repro/internal/cache"
	"repro/internal/ckpt"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/integrity"
	"repro/internal/ionode"
	"repro/internal/pfs"
	"repro/internal/ppfs"
	"repro/internal/sim"
)

// chaosWindowDefault matches the stress command's -chaos-window default.
const chaosWindowDefault = 600

// Build expands the scenario into the resilient study the core driver runs,
// plus the realized fleet (for reporting). The mapping is deliberately
// identical to the stress command's flag wiring, so the default-shape
// scenario reproduces the flag-driven run byte for byte.
func (s *Scenario) Build() (core.ResilientStudy, *Fleet, error) {
	var rs core.ResilientStudy
	study, err := s.baseStudy()
	if err != nil {
		return rs, nil, err
	}

	fleet, err := expandFleet(s, study.Machine.ComputeNodes, study.Machine.PFS.IONodes, study.Machine.PFS.Disk)
	if err != nil {
		return rs, nil, s.fail(err)
	}
	if err := s.applyFleet(&study, fleet); err != nil {
		return rs, nil, s.fail(err)
	}
	if err := s.applyFeatures(&study, fleet); err != nil {
		return rs, nil, s.fail(err)
	}
	plan, err := s.buildPlan(fleet)
	if err != nil {
		return rs, nil, s.fail(err)
	}
	if !plan.Corruption.Empty() {
		// Unrepairable corruption classes need reroute-on-read so corrupt
		// reads heal from the mirror instead of killing the run — the same
		// forcing the -corrupt flag applies.
		if !study.Machine.PFS.Failover.Enabled {
			study.Machine.PFS.Failover = pfs.DefaultFailoverConfig()
		}
		study.Machine.PFS.Failover.Replicate = true
		if !study.Machine.PFS.Reliability.Enabled {
			study.Machine.PFS.Reliability = pfs.DefaultReliabilityConfig()
		}
		if !study.Machine.PFS.Integrity.Enabled {
			study.Machine.PFS.Integrity = integrity.DefaultConfig()
		}
	}
	study.Faults = plan
	study.FaultSeed = s.Seed
	if s.Workload.WindowS > 0 {
		study.WindowWidth = sim.FromSeconds(s.Workload.WindowS)
	}
	if s.FleetGen != nil {
		// Size the trace-capture arenas from the generated machine shape —
		// event volume scales with node count, and a generated fleet can be
		// far past the serial default's paper shape.
		if n := 64 * (study.Machine.ComputeNodes + study.Machine.PFS.IONodes); n > 1024 {
			study.TraceReserve = n
		}
	}

	rs = core.ResilientStudy{
		Study:       study,
		MaxAttempts: s.Run.MaxAttempts,
		RestartCost: sim.FromSeconds(1.5),
	}
	if s.Run.RestartCostS != nil {
		rs.RestartCost = sim.FromSeconds(*s.Run.RestartCostS)
	}
	if iv := s.ckptInterval(); iv > 0 {
		bytes := s.Run.CkptBytes
		if bytes == 0 {
			bytes = 4096
		}
		rs.Ckpt = ckpt.Config{Interval: iv, BytesPerNode: bytes}
	}
	return rs, fleet, nil
}

func (s *Scenario) fail(err error) error {
	return fmt.Errorf("scenario %s: %w", s.Name, err)
}

// baseStudy picks the scale template for the app.
func (s *Scenario) baseStudy() (core.Study, error) {
	app := core.AppID(s.Workload.App)
	var study core.Study
	if s.Workload.Scale == "paper" {
		study = core.PaperStudy(app)
	} else {
		study = core.SmallStudy(app)
	}
	switch s.policy() {
	case "ppfs":
		p := ppfs.DefaultPolicy()
		study.Policy = &p
	case "adaptive":
		p := ppfs.DefaultPolicy()
		p.Adaptive = true
		study.Policy = &p
	}
	return study, nil
}

// applyFleet wires the realized fleet into the machine: node counts, stripe
// unit, per-node overrides, and the application's own node-count config.
func (s *Scenario) applyFleet(study *core.Study, f *Fleet) error {
	fg := s.FleetGen
	if fg == nil {
		return nil
	}
	if fg.StripeKB > 0 {
		study.Machine.PFS.StripeUnit = int64(fg.StripeKB * 1024)
	}
	if fg.IONodes > 0 {
		study.Machine.PFS.IONodes = f.IONodes
	}
	if len(f.Nodes) > 0 {
		study.Machine.PFS.Nodes = f.Nodes
	}
	if fg.ComputeNodes > 0 {
		n := f.ComputeNodes
		study.Machine.ComputeNodes = n
		switch core.AppID(s.Workload.App) {
		case core.ESCAT:
			cfg := escat.DefaultConfig()
			if study.ESCATConfig != nil {
				cfg = *study.ESCATConfig
			}
			cfg.Nodes = n
			study.ESCATConfig = &cfg
		case core.RENDER:
			if n < 2 {
				return fmt.Errorf("fleet_gen.compute_nodes: render needs >= 2 (1 master + renderers), got %d", n)
			}
			cfg := render.DefaultConfig()
			if study.RENDERConfig != nil {
				cfg = *study.RENDERConfig
			}
			cfg.RenderNodes = n - 1
			study.RENDERConfig = &cfg
		case core.HTF:
			cfg := htf.DefaultConfig()
			if study.HTFConfig != nil {
				cfg = *study.HTFConfig
			}
			if cfg.IntegralRecords < n {
				return fmt.Errorf("fleet_gen.compute_nodes %d exceeds htf's %d integral records at this scale (each node needs at least one)", n, cfg.IntegralRecords)
			}
			cfg.Nodes = n
			study.HTFConfig = &cfg
		}
	}
	return nil
}

// applyFeatures mirrors the cliflags groups onto the PFS/burst configs.
func (s *Scenario) applyFeatures(study *core.Study, f *Fleet) error {
	cfg := &study.Machine.PFS

	// Failover defaults on with replication, like the stress command.
	fo := s.Features.Failover
	if fo == nil {
		cfg.Failover = pfs.DefaultFailoverConfig()
		cfg.Failover.Replicate = true
	} else if fo.Enabled {
		cfg.Failover = pfs.DefaultFailoverConfig()
		cfg.Failover.Replicate = fo.Replicate
		cfg.Replication = pfs.ReplicationConfig{
			Factor:     fo.Factor,
			Seed:       fo.PlacementSeed,
			ReadPolicy: fo.ReadPolicy,
		}
		if rp := fo.Repair; rp != nil && rp.Enabled {
			rc := pfs.DefaultRepairConfig()
			if rp.BandwidthMBs > 0 {
				rc.BandwidthBytesPerS = rp.BandwidthMBs * float64(1<<20)
			}
			if rp.GiveUpS > 0 {
				rc.GiveUp = sim.FromSeconds(rp.GiveUpS)
			}
			cfg.Replication.Repair = rc
		}
	}

	if c := s.Features.Cache; c != nil && c.Enabled {
		ccfg := cache.DefaultConfig()
		if c.MB > 0 {
			ccfg.CapacityBytes = int64(c.MB * float64(1<<20))
		}
		if c.Prefetch != nil {
			ccfg.Prefetch = *c.Prefetch
		}
		ccfg.FlushOnFail = c.FlushOnFail
		cfg.Cache = ccfg
	}

	if co := s.Features.Collective; co != nil && co.Enabled {
		cfg.Collective = collective.Config{Enabled: true, Aggregators: co.Aggregators}
	}
	if s.Features.Sched != "" {
		cfg.Sched = ionode.SchedConfig{Policy: s.Features.Sched, Window: ionode.DefaultWindow}
	}

	if i := s.Features.Integrity; i != nil && i.Enabled {
		icfg := integrity.DefaultConfig()
		if i.Scrub {
			icfg.Scrub = integrity.DefaultScrubConfig()
			icfg.Scrub.Window = s.chaosWindow()
		}
		cfg.Integrity = icfg
	}
	if r := s.Features.Reliability; r != nil && r.Enabled {
		rel := pfs.DefaultReliabilityConfig()
		if r.DeadlineS > 0 {
			rel.Deadline = sim.FromSeconds(r.DeadlineS)
		}
		if r.Retries > 0 {
			rel.MaxRetries = r.Retries
		}
		cfg.Reliability = rel
	}

	if b := s.Features.Burst; b != nil && b.Enabled {
		bcfg := burst.DefaultConfig()
		if b.MB > 0 {
			bcfg.CapacityBytes = int64(b.MB * float64(1<<20))
		}
		bcfg.DrainBWBytesPerS = b.DrainMBs * float64(1<<20)
		if b.Compress > 0 {
			if b.Compress <= 1 {
				bcfg.Compress = burst.CompressConfig{}
			} else {
				bcfg.Compress.Ratio = b.Compress
			}
		}
		bcfg.PerNodeCapacity = f.BurstPerNode
		if err := bcfg.Validate(); err != nil {
			return err
		}
		study.Burst = bcfg
	}
	return nil
}

func (s *Scenario) chaosWindow() sim.Time {
	if s.Chaos.WindowS > 0 {
		return sim.FromSeconds(s.Chaos.WindowS)
	}
	return sim.FromSeconds(chaosWindowDefault)
}

// buildPlan converts the chaos section (plus the fleet's startup schedule)
// into a fault plan.
func (s *Scenario) buildPlan(f *Fleet) (fault.Plan, error) {
	plan, err := s.Chaos.Plan(f.Zones())
	if err != nil {
		return plan, err
	}
	plan.Events = append(plan.Events, f.Startup...)
	return plan, nil
}

// Plan converts a chaos section into the fault machinery's plan. zones maps
// I/O node index to outage domain for zone_outages expansion (nil treats the
// fleet as one zone-0 domain).
func (c Chaos) Plan(zones []int) (fault.Plan, error) {
	var plan fault.Plan
	for i, e := range c.Events {
		k, err := fault.ParseKind(e.Kind)
		if err != nil {
			return plan, fmt.Errorf("chaos.events[%d]: %v", i, err)
		}
		plan.Events = append(plan.Events, fault.Event{
			Kind: k, At: sim.FromSeconds(e.AtS), Node: int(e.Node),
			Duration: sim.FromSeconds(e.DurationS), Factor: e.Factor,
		})
	}
	for i, x := range c.Exps {
		k, err := fault.ParseKind(x.Kind)
		if err != nil {
			return plan, fmt.Errorf("chaos.exps[%d]: %v", i, err)
		}
		plan.Exps = append(plan.Exps, fault.Exp{
			Kind: k, MeanBetween: sim.FromSeconds(x.MeanBetweenS),
			Start: sim.FromSeconds(x.StartS), End: sim.FromSeconds(x.EndS),
			Node: int(x.Node), Duration: sim.FromSeconds(x.DurationS), Factor: x.Factor,
		})
	}
	for i, ca := range c.Cascades {
		k, err := fault.ParseKind(ca.Kind)
		if err != nil {
			return plan, fmt.Errorf("chaos.cascades[%d]: %v", i, err)
		}
		plan.Cascades = append(plan.Cascades, fault.Cascade{
			Kind: k, At: sim.FromSeconds(ca.AtS), Nodes: ca.Nodes,
			FirstNode: int(ca.FirstNode), Spacing: sim.FromSeconds(ca.SpacingS),
			Duration: sim.FromSeconds(ca.DurationS), Factor: ca.Factor,
		})
	}
	for i, z := range c.ZoneOutages {
		members := zoneMembers(zones, z.Zone)
		if len(members) == 0 {
			return plan, fmt.Errorf("chaos.zone_outages[%d]: zone %d has no member I/O nodes (define zones on fleet_gen templates)", i, z.Zone)
		}
		for idx, node := range members {
			plan.Events = append(plan.Events, fault.Event{
				Kind:     fault.IONodeOutage,
				At:       sim.FromSeconds(z.AtS + float64(idx)*z.SpacingS),
				Node:     node,
				Duration: sim.FromSeconds(z.DurationS),
			})
		}
	}
	if c.Corrupt != nil {
		window := sim.FromSeconds(c.WindowS)
		if c.WindowS <= 0 {
			window = sim.FromSeconds(chaosWindowDefault)
		}
		cp, err := fault.ParseCorruptionClasses(c.Corrupt.Classes, window)
		if err != nil {
			return plan, fmt.Errorf("chaos.corrupt: %v", err)
		}
		plan.Corruption = cp
	}
	return plan, nil
}

func zoneMembers(zones []int, zone int) []int {
	var out []int
	for node, z := range zones {
		if z == zone {
			out = append(out, node)
		}
	}
	return out
}
