package scenario

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func i64(v int64) *int64 { return &v }
func iptr(v int) *int    { return &v }

func TestMeasureOutcomes(t *testing.T) {
	if m := Measure(nil, nil); m.Outcome != OutcomeFailed {
		t.Fatalf("nil report: %v", m.Outcome)
	}

	ok := &core.ResilientReport{
		Final:    &core.Report{},
		Attempts: []core.Attempt{{}},
		Wall:     2 * sim.Second,
	}
	if m := Measure(ok, nil); m.Outcome != OutcomeOK || m.MakespanS != 2 {
		t.Fatalf("clean run: %+v", m)
	}

	degraded := &core.ResilientReport{
		Final:    &core.Report{},
		Attempts: []core.Attempt{{Failed: true, Err: "outage"}, {}},
		Wall:     5 * sim.Second,
	}
	if m := Measure(degraded, nil); m.Outcome != OutcomeDegraded || m.FailedAttempts != 1 {
		t.Fatalf("degraded run: %+v", m)
	}

	lost := &core.ResilientReport{
		Final:          &core.Report{},
		Attempts:       []core.Attempt{{}},
		BurstLostBytes: 512,
	}
	if m := Measure(lost, nil); m.Outcome != OutcomeDegraded || m.LostBytes != 512 {
		t.Fatalf("lost-bytes run: %+v", m)
	}

	exhausted := &core.ResilientReport{
		Attempts: []core.Attempt{{Failed: true, Err: "outage"}},
	}
	if m := Measure(exhausted, nil); m.Outcome != OutcomeFailed {
		t.Fatalf("exhausted run: %+v", m)
	}
}

func TestEvaluateBounds(t *testing.T) {
	m := Measurements{
		Outcome:        OutcomeDegraded,
		MakespanS:      10,
		P95ReadMs:      3,
		CacheHitRatio:  0.8,
		HasCache:       true,
		LostBytes:      100,
		FailedAttempts: 1,
		PhysRequests:   500,
	}
	a := &Assertions{
		Expected:          "degraded",
		MaxMakespanS:      20,
		MinMakespanS:      5,
		MaxP95ReadMs:      4,
		MinCacheHitRatio:  0.5,
		MaxLostBytes:      i64(200),
		MaxFailedAttempts: iptr(2),
		MaxPhysRequests:   1000,
	}
	checks := a.Evaluate(m)
	if len(checks) != 8 {
		t.Fatalf("want 8 checks, got %d: %+v", len(checks), checks)
	}
	if !Passed(checks) {
		t.Fatalf("all bounds hold but checks failed: %+v", checks)
	}

	// Flip each bound and confirm exactly that check trips.
	tight := &Assertions{
		Expected:          "ok",    // outcome is degraded
		MaxMakespanS:      9,       // 10 > 9
		MinMakespanS:      0,       // unchecked
		MaxP95ReadMs:      2,       // 3 > 2
		MinCacheHitRatio:  0.9,     // 0.8 < 0.9
		MaxLostBytes:      i64(50), // 100 > 50
		MaxFailedAttempts: iptr(0), // 1 > 0
		MaxPhysRequests:   400,     // 500 > 400
	}
	failed := map[string]bool{}
	for _, c := range tight.Evaluate(m) {
		if !c.Pass {
			failed[c.Name] = true
		}
	}
	for _, name := range []string{"expected", "max_makespan_s", "max_p95_read_ms",
		"min_cache_hit_ratio", "max_lost_bytes", "max_failed_attempts", "max_phys_requests"} {
		if !failed[name] {
			t.Fatalf("check %s should have failed: %v", name, failed)
		}
	}
	if failed["min_makespan_s"] {
		t.Fatal("zero-valued min_makespan_s should be unchecked")
	}
}

func TestEvaluateNilAndCacheGuard(t *testing.T) {
	var a *Assertions
	if checks := a.Evaluate(Measurements{}); len(checks) != 0 || !Passed(checks) {
		t.Fatalf("nil assertions: %+v", checks)
	}
	// A hit-ratio bound never passes without the cache measurement.
	b := &Assertions{MinCacheHitRatio: 0.1}
	checks := b.Evaluate(Measurements{CacheHitRatio: 0.9, HasCache: false})
	if Passed(checks) {
		t.Fatal("hit-ratio bound passed without a cache in the run")
	}
}

// TestExecuteFailingScenario runs a deliberately failing scenario end to end:
// the run is clean, the assertions demand the impossible.
func TestExecuteFailingScenario(t *testing.T) {
	s, err := Parse([]byte(`
name: doomed
workload:
  app: escat
assertions:
  expected: degraded
  max_makespan_s: 0.001
`), "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass() {
		t.Fatal("impossible assertions passed")
	}
	failed := map[string]bool{}
	for _, c := range res.Checks {
		if !c.Pass {
			failed[c.Name] = true
		}
	}
	if !failed["expected"] || !failed["max_makespan_s"] {
		t.Fatalf("wrong checks tripped: %+v", res.Checks)
	}
	out := RenderChecks(s.Name, res.M, res.Checks)
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "VIOLATED") {
		t.Fatalf("render does not surface the violation:\n%s", out)
	}
}

func TestExecutePassingScenario(t *testing.T) {
	s, err := Parse([]byte(`
name: clean
workload:
  app: escat
assertions:
  expected: ok
  max_failed_attempts: 0
`), "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass() {
		t.Fatalf("clean run failed its assertions: %+v", res.Checks)
	}
	if res.M.Outcome != OutcomeOK {
		t.Fatalf("outcome: %v", res.M.Outcome)
	}
	out := RenderChecks(s.Name, res.M, res.Checks)
	if !strings.Contains(out, "PASS") {
		t.Fatalf("render:\n%s", out)
	}
}
