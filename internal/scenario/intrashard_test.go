package scenario

import (
	"fmt"
	"strings"
	"testing"
)

const splitScenarioSrc = `
name: split-run
seed: 13
workload:
  app: escat
fleet_gen:
  io_nodes: 4
  shard_layout: split:2
features:
  integrity:
    enabled: true
assertions:
  expected: ok
  max_failed_attempts: 0
`

// splitResultImage executes the split-machine scenario under one worker
// bound and renders the result.
func splitResultImage(t *testing.T, shards int) string {
	t.Helper()
	sc, err := Parse([]byte(splitScenarioSrc), "")
	if err != nil {
		t.Fatal(err)
	}
	sc.Shards = shards
	res, err := sc.Execute()
	if err != nil {
		t.Fatalf("Execute (shards=%d): %v", shards, err)
	}
	if res.FleetRun != nil {
		t.Fatalf("split single-machine scenario ran as a multi-cell fleet")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "wall=%d attempts=%d events=%d summary=%+v\n",
		res.Report.Wall, len(res.Report.Attempts), len(res.Report.Final.Events), res.Report.Final.Summary)
	b.WriteString(RenderChecks(sc.Name, res.M, res.Checks))
	return b.String()
}

// TestExecuteSplitByteIdenticalAcrossShards is the DSL-level face of the
// intra-machine oracle: a shard_layout split:2 scenario's result must not
// depend on the -shards worker bound.
func TestExecuteSplitByteIdenticalAcrossShards(t *testing.T) {
	ref := splitResultImage(t, 1)
	if !strings.Contains(ref, "Assertions (split-run): PASS") {
		t.Fatalf("split scenario did not pass its assertions:\n%s", ref)
	}
	for _, shards := range []int{2, 4} {
		if got := splitResultImage(t, shards); got != ref {
			t.Errorf("split scenario result at shards=%d differs from the shards=1 oracle:\n-- shards=1:\n%s\n-- shards=%d:\n%s",
				shards, ref, shards, got)
		}
	}
}

// TestShardLayoutValidation pins the knob's accepted forms and its
// interaction with the checkpoint loop.
func TestShardLayoutValidation(t *testing.T) {
	parse := func(layout, run string) error {
		src := "workload:\n  app: escat\nfleet_gen:\n  shard_layout: " + layout + "\n" + run
		_, err := Parse([]byte(src), "")
		return err
	}
	if err := parse("single", ""); err != nil {
		t.Fatalf("shard_layout single rejected: %v", err)
	}
	if err := parse("split:4", ""); err != nil {
		t.Fatalf("shard_layout split:4 rejected: %v", err)
	}
	for _, bad := range []string{"split:0", "split:x", "mesh"} {
		if err := parse(bad, ""); err == nil || !strings.Contains(err.Error(), "shard_layout") {
			t.Errorf("shard_layout %q: got err %v, want a shard_layout rejection", bad, err)
		}
	}
	if err := parse("split:2", "run:\n  ckpt_interval: 2\n"); err == nil ||
		!strings.Contains(err.Error(), "single attempt") {
		t.Errorf("split + ckpt_interval: got err %v, want a single-attempt rejection", err)
	}
}
