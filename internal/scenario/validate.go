package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/ionode"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// Apps, scales, policies and patterns the workload/fleet sections accept.
var (
	validApps     = []string{"escat", "render", "htf"}
	validScales   = []string{"", "small", "paper"}
	validPolicies = []string{"", "none", "ppfs", "adaptive"}
	validPatterns = []string{"", "instant", "linear", "exponential", "wave"}
	validExpected = []string{"", "ok", "degraded", "failed"}
)

func oneOf(v string, allowed []string) bool {
	for _, a := range allowed {
		if v == a {
			return true
		}
	}
	return false
}

// Validate checks the scenario's internal consistency — everything knowable
// without running it. Cross-checks that need the expanded fleet (zone-outage
// membership) happen in Build.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario needs a name")
	}
	if !oneOf(s.Workload.App, validApps) {
		return fmt.Errorf("workload.app %q: want one of %s",
			s.Workload.App, strings.Join(validApps, ", "))
	}
	if !oneOf(s.Workload.Scale, validScales) {
		return fmt.Errorf("workload.scale %q: want small or paper", s.Workload.Scale)
	}
	if !oneOf(s.Workload.Policy, validPolicies) {
		return fmt.Errorf("workload.policy %q: want none, ppfs or adaptive", s.Workload.Policy)
	}
	if s.Workload.WindowS < 0 {
		return fmt.Errorf("workload.window_s %g is negative", s.Workload.WindowS)
	}
	if err := s.validateFleetGen(); err != nil {
		return err
	}
	if err := s.validateFeatures(); err != nil {
		return err
	}
	if err := s.Chaos.validate(); err != nil {
		return err
	}
	if err := s.validateRun(); err != nil {
		return err
	}
	return s.validateAssertions()
}

func (s *Scenario) validateFleetGen() error {
	fg := s.FleetGen
	if fg == nil {
		return nil
	}
	if fg.ComputeNodes < 0 {
		return fmt.Errorf("fleet_gen.compute_nodes %d is negative", fg.ComputeNodes)
	}
	if fg.IONodes < 0 {
		return fmt.Errorf("fleet_gen.io_nodes %d is negative", fg.IONodes)
	}
	if fg.StripeKB < 0 {
		return fmt.Errorf("fleet_gen.stripe_kb %g is negative", fg.StripeKB)
	}
	if fg.Cells < 0 {
		return fmt.Errorf("fleet_gen.cells %d is negative", fg.Cells)
	}
	if fg.StaggerS < 0 {
		return fmt.Errorf("fleet_gen.stagger_s %g is negative", fg.StaggerS)
	}
	if fg.StaggerS > 0 && fg.Cells <= 1 {
		return fmt.Errorf("fleet_gen.stagger_s needs cells > 1")
	}
	if _, err := parseShardLayout(fg.ShardLayout); err != nil {
		return fmt.Errorf("fleet_gen.shard_layout: %w", err)
	}
	fixed := 0
	names := map[string]bool{}
	for i, t := range fg.Templates {
		where := fmt.Sprintf("fleet_gen.templates[%d]", i)
		if t.Name == "" {
			return fmt.Errorf("%s needs a name", where)
		}
		if names[t.Name] {
			return fmt.Errorf("%s: duplicate template name %q", where, t.Name)
		}
		names[t.Name] = true
		if t.Weight < 0 {
			return fmt.Errorf("%s (%s): weight %g is negative", where, t.Name, t.Weight)
		}
		if t.Count < 0 {
			return fmt.Errorf("%s (%s): count %d is negative", where, t.Name, t.Count)
		}
		fixed += t.Count
		if t.DiskMBs < 0 || t.PositionMs < 0 || t.DiskStreams < 0 {
			return fmt.Errorf("%s (%s): disk parameters must be >= 0", where, t.Name)
		}
		if t.CacheMB < 0 {
			return fmt.Errorf("%s (%s): cache_mb %g is negative", where, t.Name, t.CacheMB)
		}
		if t.CacheMB > 0 && !s.cacheEnabled() {
			return fmt.Errorf("%s (%s): cache_mb set but features.cache is not enabled", where, t.Name)
		}
		if t.BurstMB < 0 {
			return fmt.Errorf("%s (%s): burst_mb %g is negative", where, t.Name, t.BurstMB)
		}
		if t.BurstMB > 0 && !s.burstEnabled() {
			return fmt.Errorf("%s (%s): burst_mb set but features.burst is not enabled", where, t.Name)
		}
		if t.Zone < 0 {
			return fmt.Errorf("%s (%s): zone %d is negative", where, t.Name, t.Zone)
		}
	}
	if ion := s.ioNodes(); fixed > ion {
		return fmt.Errorf("fleet_gen.templates pin %d nodes by count but the fleet has %d I/O nodes", fixed, ion)
	}
	if st := fg.Startup; st != nil {
		if !oneOf(st.Pattern, validPatterns) {
			return fmt.Errorf("fleet_gen.startup.pattern %q: want instant, linear, exponential or wave", st.Pattern)
		}
		if st.OverS < 0 {
			return fmt.Errorf("fleet_gen.startup.over_s %g is negative", st.OverS)
		}
		if st.Waves < 0 {
			return fmt.Errorf("fleet_gen.startup.waves %d is negative", st.Waves)
		}
		if st.Waves > 0 && st.Pattern != "wave" {
			return fmt.Errorf("fleet_gen.startup.waves needs pattern: wave")
		}
		if st.JitterFrac < 0 || st.JitterFrac >= 1 {
			return fmt.Errorf("fleet_gen.startup.jitter_frac %g: want [0, 1)", st.JitterFrac)
		}
	}
	return nil
}

func (s *Scenario) validateFeatures() error {
	f := s.Features
	if c := f.Cache; c != nil && c.Enabled && c.MB < 0 {
		return fmt.Errorf("features.cache.mb %g is negative", c.MB)
	}
	if co := f.Collective; co != nil {
		if !co.Enabled && co.Aggregators != 0 {
			return fmt.Errorf("features.collective.aggregators needs enabled: true")
		}
		if co.Aggregators < 0 {
			return fmt.Errorf("features.collective.aggregators %d is negative", co.Aggregators)
		}
	}
	if f.Sched != "" {
		sc := ionode.SchedConfig{Policy: f.Sched, Window: ionode.DefaultWindow}
		if err := sc.Validate(); err != nil {
			return fmt.Errorf("features.sched: %v", err)
		}
	}
	if b := f.Burst; b != nil && b.Enabled {
		if b.MB < 0 || b.DrainMBs < 0 {
			return fmt.Errorf("features.burst: mb and drain_mb_s must be >= 0")
		}
		if s.policy() != "none" {
			return fmt.Errorf("features.burst and workload.policy %q are mutually exclusive (both are client-side layers over the same seam)", s.policy())
		}
	}
	if r := f.Reliability; r != nil && r.Enabled {
		if r.DeadlineS < 0 {
			return fmt.Errorf("features.reliability.deadline_s %g is negative", r.DeadlineS)
		}
		if r.Retries < 0 {
			return fmt.Errorf("features.reliability.retries %d is negative", r.Retries)
		}
	}
	if fo := f.Failover; fo != nil {
		if !fo.Enabled && (fo.Factor != 0 || fo.ReadPolicy != "" || fo.Repair != nil) {
			return fmt.Errorf("features.failover: factor, read_policy and repair need enabled: true")
		}
		if fo.Factor < 0 || fo.Factor > pfs.MaxReplicationFactor {
			return fmt.Errorf("features.failover.factor %d: want 0 (legacy) or 1..%d", fo.Factor, pfs.MaxReplicationFactor)
		}
		switch fo.ReadPolicy {
		case "", pfs.ReadPrimaryFirst, pfs.ReadAnyReplica, pfs.ReadQuorum:
		default:
			return fmt.Errorf("features.failover.read_policy %q: want %s, %s or %s",
				fo.ReadPolicy, pfs.ReadPrimaryFirst, pfs.ReadAnyReplica, pfs.ReadQuorum)
		}
		if rp := fo.Repair; rp != nil {
			if !rp.Enabled && (rp.BandwidthMBs != 0 || rp.GiveUpS != 0) {
				return fmt.Errorf("features.failover.repair: bandwidth_mb_s and give_up_s need enabled: true")
			}
			if rp.BandwidthMBs < 0 {
				return fmt.Errorf("features.failover.repair.bandwidth_mb_s %g is negative", rp.BandwidthMBs)
			}
			if rp.GiveUpS < 0 {
				return fmt.Errorf("features.failover.repair.give_up_s %g is negative", rp.GiveUpS)
			}
			if rp.Enabled && fo.Factor == 1 {
				return fmt.Errorf("features.failover.repair needs replication (factor >= 2, or factor 0 with replicate: true)")
			}
			if rp.Enabled && fo.Factor == 0 && !fo.Replicate {
				return fmt.Errorf("features.failover.repair needs replication (set factor or replicate: true)")
			}
		}
	}
	return nil
}

func (c Chaos) validate() error {
	if c.WindowS < 0 {
		return fmt.Errorf("chaos.window_s %g is negative", c.WindowS)
	}
	for i, e := range c.Events {
		if _, err := fault.ParseKind(e.Kind); err != nil {
			return fmt.Errorf("chaos.events[%d]: %v", i, err)
		}
		if e.AtS < 0 || e.DurationS < 0 {
			return fmt.Errorf("chaos.events[%d]: times must be >= 0", i)
		}
	}
	for i, x := range c.Exps {
		if _, err := fault.ParseKind(x.Kind); err != nil {
			return fmt.Errorf("chaos.exps[%d]: %v", i, err)
		}
		if x.MeanBetweenS <= 0 {
			return fmt.Errorf("chaos.exps[%d]: mean_between_s must be > 0", i)
		}
		if x.EndS <= x.StartS {
			return fmt.Errorf("chaos.exps[%d]: end_s %g must be after start_s %g", i, x.EndS, x.StartS)
		}
	}
	for i, ca := range c.Cascades {
		if _, err := fault.ParseKind(ca.Kind); err != nil {
			return fmt.Errorf("chaos.cascades[%d]: %v", i, err)
		}
		if ca.Nodes < 1 {
			return fmt.Errorf("chaos.cascades[%d]: nodes %d must be >= 1", i, ca.Nodes)
		}
		if ca.AtS < 0 || ca.SpacingS < 0 || ca.DurationS < 0 {
			return fmt.Errorf("chaos.cascades[%d]: times must be >= 0", i)
		}
	}
	for i, z := range c.ZoneOutages {
		if z.Zone < 0 {
			return fmt.Errorf("chaos.zone_outages[%d]: zone %d is negative", i, z.Zone)
		}
		if z.DurationS <= 0 {
			return fmt.Errorf("chaos.zone_outages[%d]: duration_s must be > 0", i)
		}
		if z.AtS < 0 || z.SpacingS < 0 {
			return fmt.Errorf("chaos.zone_outages[%d]: times must be >= 0", i)
		}
	}
	if c.Corrupt != nil {
		if _, err := fault.ParseCorruptionClasses(c.Corrupt.Classes, sim.Second); err != nil {
			return fmt.Errorf("chaos.corrupt: %v", err)
		}
	}
	return nil
}

func (s *Scenario) validateRun() error {
	r := s.Run
	if r.CkptInterval != nil && *r.CkptInterval < 0 {
		return fmt.Errorf("run.ckpt_interval %d is negative", *r.CkptInterval)
	}
	if s.Workload.App == "render" && s.ckptInterval() > 0 {
		return fmt.Errorf("run.ckpt_interval: render does not support checkpointing (set ckpt_interval: 0)")
	}
	if s.cells() > 1 {
		// A multi-cell fleet runs one attempt per cell on the sharded
		// engine; the checkpoint/restart loop is a single-machine driver.
		if r.CkptInterval != nil && *r.CkptInterval > 0 {
			return fmt.Errorf("run.ckpt_interval: fleet_gen.cells > 1 runs a single attempt per cell (set ckpt_interval: 0)")
		}
		if r.MaxAttempts > 1 {
			return fmt.Errorf("run.max_attempts: fleet_gen.cells > 1 runs a single attempt per cell")
		}
	}
	if s.ioShards() > 0 && s.cells() <= 1 {
		// A split machine likewise runs one attempt on the fabric.
		if r.CkptInterval != nil && *r.CkptInterval > 0 {
			return fmt.Errorf("run.ckpt_interval: fleet_gen.shard_layout %q runs a single attempt (set ckpt_interval: 0)", s.FleetGen.ShardLayout)
		}
		if r.MaxAttempts > 1 {
			return fmt.Errorf("run.max_attempts: fleet_gen.shard_layout %q runs a single attempt", s.FleetGen.ShardLayout)
		}
	}
	if r.CkptBytes < 0 {
		return fmt.Errorf("run.ckpt_bytes %d is negative", r.CkptBytes)
	}
	if r.RestartCostS != nil && *r.RestartCostS < 0 {
		return fmt.Errorf("run.restart_cost_s %g is negative", *r.RestartCostS)
	}
	if r.MaxAttempts < 0 {
		return fmt.Errorf("run.max_attempts %d is negative", r.MaxAttempts)
	}
	return nil
}

func (s *Scenario) validateAssertions() error {
	a := s.Assertions
	if a == nil {
		return nil
	}
	if !oneOf(a.Expected, validExpected) {
		return fmt.Errorf("assertions.expected %q: want ok, degraded or failed", a.Expected)
	}
	if a.MaxMakespanS < 0 || a.MinMakespanS < 0 {
		return fmt.Errorf("assertions: makespan bounds must be >= 0")
	}
	if a.MaxMakespanS > 0 && a.MinMakespanS > a.MaxMakespanS {
		return fmt.Errorf("assertions: min_makespan_s %g exceeds max_makespan_s %g", a.MinMakespanS, a.MaxMakespanS)
	}
	if a.MaxP95ReadMs < 0 {
		return fmt.Errorf("assertions.max_p95_read_ms %g is negative", a.MaxP95ReadMs)
	}
	if a.MinCacheHitRatio < 0 || a.MinCacheHitRatio > 1 {
		return fmt.Errorf("assertions.min_cache_hit_ratio %g: want [0, 1]", a.MinCacheHitRatio)
	}
	if a.MinCacheHitRatio > 0 && !s.cacheEnabled() {
		return fmt.Errorf("assertions.min_cache_hit_ratio needs features.cache enabled")
	}
	if a.MaxLostBytes != nil && *a.MaxLostBytes < 0 {
		return fmt.Errorf("assertions.max_lost_bytes %d is negative", *a.MaxLostBytes)
	}
	if a.MaxFailedAttempts != nil && *a.MaxFailedAttempts < 0 {
		return fmt.Errorf("assertions.max_failed_attempts %d is negative", *a.MaxFailedAttempts)
	}
	if a.MaxPhysRequests < 0 {
		return fmt.Errorf("assertions.max_phys_requests %d is negative", a.MaxPhysRequests)
	}
	if a.MinRedundancy != nil {
		if *a.MinRedundancy < 0 || *a.MinRedundancy > pfs.MaxReplicationFactor {
			return fmt.Errorf("assertions.min_redundancy %d: want 0..%d", *a.MinRedundancy, pfs.MaxReplicationFactor)
		}
		if *a.MinRedundancy > 1 && s.Features.Failover != nil && !s.Features.Failover.Enabled {
			return fmt.Errorf("assertions.min_redundancy needs features.failover enabled")
		}
	}
	if a.MaxRepairTimeS < 0 {
		return fmt.Errorf("assertions.max_repair_time_s %g is negative", a.MaxRepairTimeS)
	}
	return nil
}

// Resolved defaults the rest of the package reads through.

func (s *Scenario) policy() string {
	if s.Workload.Policy == "" {
		return "none"
	}
	return s.Workload.Policy
}

func (s *Scenario) cacheEnabled() bool {
	return s.Features.Cache != nil && s.Features.Cache.Enabled
}

func (s *Scenario) burstEnabled() bool {
	return s.Features.Burst != nil && s.Features.Burst.Enabled
}

// ioNodes returns each cell's I/O-node count (the paper's 16 by default).
func (s *Scenario) ioNodes() int {
	if s.FleetGen != nil && s.FleetGen.IONodes > 0 {
		return s.FleetGen.IONodes
	}
	return 16
}

// cells returns the fleet's cell count; 1 is the single-machine shape.
func (s *Scenario) cells() int {
	if s.FleetGen != nil && s.FleetGen.Cells > 1 {
		return s.FleetGen.Cells
	}
	return 1
}

// parseShardLayout decodes fleet_gen.shard_layout: "" or "single" keep each
// machine on one engine (0), "split:N" partitions its I/O nodes over N
// server shards.
func parseShardLayout(layout string) (int, error) {
	switch {
	case layout == "" || layout == "single":
		return 0, nil
	case strings.HasPrefix(layout, "split:"):
		n, err := strconv.Atoi(strings.TrimPrefix(layout, "split:"))
		if err != nil || n < 1 {
			return 0, fmt.Errorf("%q: want \"single\" or \"split:N\" with N >= 1", layout)
		}
		return n, nil
	default:
		return 0, fmt.Errorf("%q: want \"single\" or \"split:N\"", layout)
	}
}

// ioShards returns the per-machine I/O shard count (0 = unpartitioned).
func (s *Scenario) ioShards() int {
	if s.FleetGen == nil {
		return 0
	}
	n, _ := parseShardLayout(s.FleetGen.ShardLayout)
	return n
}

// IOShards is the exported face of the shard_layout knob: the number of I/O
// shards each machine is split across, 0 for the single-engine shape. CLIs
// that run a scenario's study through core.RunSharded themselves read it.
func (s *Scenario) IOShards() int { return s.ioShards() }

// ckptInterval returns the checkpoint interval: the stress command's default
// of 2 when unset, the explicit value (including 0 = off) otherwise. render
// never checkpoints — it has no checkpointable work loop — and multi-cell
// fleets run single attempts (validateRun rejects an explicit interval).
func (s *Scenario) ckptInterval() int {
	if s.cells() > 1 || s.ioShards() > 0 {
		return 0
	}
	if s.Run.CkptInterval != nil {
		return *s.Run.CkptInterval
	}
	if s.Workload.App == "render" {
		return 0
	}
	return 2
}
