package scenario

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
)

// Result is one executed scenario: the run's report, the measured
// quantities, and the assertion verdict.
type Result struct {
	Scenario *Scenario
	Fleet    *Fleet

	// Report is the resilience driver's report; non-nil even when the run
	// exhausted its attempts. RunErr is the driver's completion error. For
	// a multi-cell scenario it is the fleet report adapted to the same
	// shape (see FleetResilientReport) and FleetRun carries the original.
	Report *core.ResilientReport
	RunErr error

	// FleetRun is the sharded-fleet report for scenarios with
	// fleet_gen.cells > 1; nil for single-machine runs.
	FleetRun *core.FleetReport

	M      Measurements
	Checks []Check
}

// Pass reports the scenario's verdict: every configured assertion holds.
// Scenarios without assertions pass whenever the run's outcome was not a
// surprise error (a failed run with no assertions is still a pass — the
// scenario simply recorded what happened).
func (r *Result) Pass() bool { return Passed(r.Checks) }

// Run builds and executes the scenario. An error return means the scenario
// could not run at all (bad configuration); an unfinished run is not an
// error — it surfaces as Outcome "failed" for the assertions to judge.
func (r *Scenario) Execute() (*Result, error) {
	rs, fleet, err := r.Build()
	if err != nil {
		return nil, err
	}
	if fo, ok := r.FleetOptions(r.Shards); ok {
		return r.executeFleet(rs, fleet, fo)
	}
	if k := r.ioShards(); k > 0 {
		return r.executeSharded(rs, fleet, k)
	}
	rr, runErr := core.RunResilient(rs)
	if rr == nil && runErr != nil {
		// No report at all: the study itself was rejected.
		return nil, r.fail(runErr)
	}
	m := Measure(rr, runErr)
	return &Result{
		Scenario: r,
		Fleet:    fleet,
		Report:   rr,
		RunErr:   runErr,
		M:        m,
		Checks:   r.Assertions.Evaluate(m),
	}, nil
}

// FleetOptions returns the sharded-fleet options a multi-cell scenario runs
// under; ok is false for the default single-machine shape. shards is the
// CLI's -shards value (0 = GOMAXPROCS, 1 = the serial oracle).
func (r *Scenario) FleetOptions(shards int) (core.FleetOptions, bool) {
	if r.cells() <= 1 {
		return core.FleetOptions{}, false
	}
	var stagger sim.Time
	if r.FleetGen.StaggerS > 0 {
		stagger = sim.FromSeconds(r.FleetGen.StaggerS)
	}
	return core.FleetOptions{
		Cells:    r.cells(),
		Stagger:  stagger,
		Shards:   shards,
		IOShards: r.ioShards(),
		Seed:     r.Seed,
	}, true
}

// executeSharded runs a single-machine scenario whose machine is split
// across the fabric (fleet_gen.shard_layout "split:N"): one attempt, no
// restart loop, with the CLI's -shards value as the fabric's worker bound.
func (r *Scenario) executeSharded(rs core.ResilientStudy, fleet *Fleet, ioShards int) (*Result, error) {
	s := rs.Study
	// The measurement layer reads the run's event trace.
	s.KeepTrace = true
	sr, err := core.RunSharded(s, core.ShardedOptions{IOShards: ioShards, Workers: r.Shards, Seed: r.Seed})
	if err != nil {
		return nil, r.fail(err)
	}
	rr := &core.ResilientReport{
		Final:     sr.Report,
		Attempts:  []core.Attempt{{End: sr.Wall}},
		Incidents: sr.Incidents,
		Wall:      sr.Wall,
	}
	m := Measure(rr, nil)
	return &Result{
		Scenario: r,
		Fleet:    fleet,
		Report:   rr,
		M:        m,
		Checks:   r.Assertions.Evaluate(m),
	}, nil
}

// executeFleet runs a multi-cell scenario on the sharded engine: one attempt
// of the study per cell, no restart loop. A fleet error is a configuration
// or launch failure, not an assertable outcome, so it fails Execute.
func (r *Scenario) executeFleet(rs core.ResilientStudy, fleet *Fleet, fo core.FleetOptions) (*Result, error) {
	s := rs.Study
	// The measurement layer reads the representative cell's event trace.
	s.KeepTrace = true
	fr, err := core.RunFleet(s, fo)
	if err != nil {
		return nil, r.fail(err)
	}
	rr := FleetResilientReport(fr)
	m := Measure(rr, nil)
	return &Result{
		Scenario: r,
		Fleet:    fleet,
		Report:   rr,
		FleetRun: fr,
		M:        m,
		Checks:   r.Assertions.Evaluate(m),
	}, nil
}

// FleetResilientReport adapts a fleet report to the resilient-report shape
// the measurement and rendering layers consume: one completed "attempt" per
// cell (a fleet run fails fast instead of restarting), cell 0 as the
// representative report — it keeps the study's own fault timeline, so its
// trace-derived measurements match the single-machine run's — the
// concatenated incident log in cell order, and the fleet makespan as the
// wall clock.
func FleetResilientReport(fr *core.FleetReport) *core.ResilientReport {
	rr := &core.ResilientReport{Final: fr.Cells[0], Wall: fr.Makespan}
	for i, r := range fr.Cells {
		rr.Attempts = append(rr.Attempts, core.Attempt{Start: fr.Starts[i], End: r.Wall})
		rr.Incidents = append(rr.Incidents, r.Incidents...)
	}
	return rr
}

// RenderFleetRun formats the fleet-level outcome of a multi-cell scenario.
func RenderFleetRun(fr *core.FleetReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet run: %d cells on %d shards (%d workers), %d launch mails, makespan %.3fs\n",
		len(fr.Cells), fr.Fabric.Shards, fr.Fabric.Workers, fr.Fabric.Mail, fr.Makespan.Seconds())
	return b.String()
}

// RenderFleet formats the realized fleet as a report section; empty for the
// default homogeneous shape with instant startup.
func RenderFleet(f *Fleet) string {
	if f == nil || (len(f.Assignment) == 0 && len(f.Startup) == 0) {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet:\n")
	if len(f.Assignment) > 0 {
		// Group consecutive nodes sharing a template for a compact layout.
		fmt.Fprintf(&b, "  %d I/O nodes: %s\n", f.IONodes, layout(f.Assignment))
		byT := map[string]int{}
		for _, name := range f.Assignment {
			byT[name]++
		}
		for _, name := range uniqueInOrder(f.Assignment) {
			fmt.Fprintf(&b, "  template %-12s x%d\n", name, byT[name])
		}
	}
	if len(f.Startup) > 0 {
		last := f.Startup[len(f.Startup)-1]
		fmt.Fprintf(&b, "  startup: %d nodes online late, last (node %d) at %.3fs\n",
			len(f.Startup), last.Node, last.Duration.Seconds())
	}
	return b.String()
}

// RenderChecks formats the assertion section: the verdict plus every bound,
// violated bounds called out with their measured value.
func RenderChecks(name string, m Measurements, checks []Check) string {
	var b strings.Builder
	verdict := "PASS"
	if !Passed(checks) {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "Assertions (%s): %s\n", name, verdict)
	fmt.Fprintf(&b, "  outcome %s", m.Outcome)
	if m.CompletionErr != "" {
		fmt.Fprintf(&b, "  (%s)", m.CompletionErr)
	}
	fmt.Fprintln(&b)
	for _, c := range checks {
		status := "ok"
		if !c.Pass {
			status = "VIOLATED"
		}
		fmt.Fprintf(&b, "  %-22s bound %-12s actual %-12s %s\n", c.Name, c.Bound, c.Actual, status)
	}
	if len(checks) == 0 {
		fmt.Fprintf(&b, "  (no assertions configured)\n")
	}
	return b.String()
}

// layout compresses a per-node template assignment into "0-3:fast 4-15:slow"
// runs.
func layout(assign []string) string {
	var parts []string
	for i := 0; i < len(assign); {
		j := i
		for j+1 < len(assign) && assign[j+1] == assign[i] {
			j++
		}
		if i == j {
			parts = append(parts, fmt.Sprintf("%d:%s", i, assign[i]))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d:%s", i, j, assign[i]))
		}
		i = j + 1
	}
	return strings.Join(parts, " ")
}

func uniqueInOrder(names []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
