package scenario

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Result is one executed scenario: the run's report, the measured
// quantities, and the assertion verdict.
type Result struct {
	Scenario *Scenario
	Fleet    *Fleet

	// Report is the resilience driver's report; non-nil even when the run
	// exhausted its attempts. RunErr is the driver's completion error.
	Report *core.ResilientReport
	RunErr error

	M      Measurements
	Checks []Check
}

// Pass reports the scenario's verdict: every configured assertion holds.
// Scenarios without assertions pass whenever the run's outcome was not a
// surprise error (a failed run with no assertions is still a pass — the
// scenario simply recorded what happened).
func (r *Result) Pass() bool { return Passed(r.Checks) }

// Run builds and executes the scenario. An error return means the scenario
// could not run at all (bad configuration); an unfinished run is not an
// error — it surfaces as Outcome "failed" for the assertions to judge.
func (r *Scenario) Execute() (*Result, error) {
	rs, fleet, err := r.Build()
	if err != nil {
		return nil, err
	}
	rr, runErr := core.RunResilient(rs)
	if rr == nil && runErr != nil {
		// No report at all: the study itself was rejected.
		return nil, r.fail(runErr)
	}
	m := Measure(rr, runErr)
	return &Result{
		Scenario: r,
		Fleet:    fleet,
		Report:   rr,
		RunErr:   runErr,
		M:        m,
		Checks:   r.Assertions.Evaluate(m),
	}, nil
}

// RenderFleet formats the realized fleet as a report section; empty for the
// default homogeneous shape with instant startup.
func RenderFleet(f *Fleet) string {
	if f == nil || (len(f.Assignment) == 0 && len(f.Startup) == 0) {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet:\n")
	if len(f.Assignment) > 0 {
		// Group consecutive nodes sharing a template for a compact layout.
		fmt.Fprintf(&b, "  %d I/O nodes: %s\n", f.IONodes, layout(f.Assignment))
		byT := map[string]int{}
		for _, name := range f.Assignment {
			byT[name]++
		}
		for _, name := range uniqueInOrder(f.Assignment) {
			fmt.Fprintf(&b, "  template %-12s x%d\n", name, byT[name])
		}
	}
	if len(f.Startup) > 0 {
		last := f.Startup[len(f.Startup)-1]
		fmt.Fprintf(&b, "  startup: %d nodes online late, last (node %d) at %.3fs\n",
			len(f.Startup), last.Node, last.Duration.Seconds())
	}
	return b.String()
}

// RenderChecks formats the assertion section: the verdict plus every bound,
// violated bounds called out with their measured value.
func RenderChecks(name string, m Measurements, checks []Check) string {
	var b strings.Builder
	verdict := "PASS"
	if !Passed(checks) {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "Assertions (%s): %s\n", name, verdict)
	fmt.Fprintf(&b, "  outcome %s", m.Outcome)
	if m.CompletionErr != "" {
		fmt.Fprintf(&b, "  (%s)", m.CompletionErr)
	}
	fmt.Fprintln(&b)
	for _, c := range checks {
		status := "ok"
		if !c.Pass {
			status = "VIOLATED"
		}
		fmt.Fprintf(&b, "  %-22s bound %-12s actual %-12s %s\n", c.Name, c.Bound, c.Actual, status)
	}
	if len(checks) == 0 {
		fmt.Fprintf(&b, "  (no assertions configured)\n")
	}
	return b.String()
}

// layout compresses a per-node template assignment into "0-3:fast 4-15:slow"
// runs.
func layout(assign []string) string {
	var parts []string
	for i := 0; i < len(assign); {
		j := i
		for j+1 < len(assign) && assign[j+1] == assign[i] {
			j++
		}
		if i == j {
			parts = append(parts, fmt.Sprintf("%d:%s", i, assign[i]))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d:%s", i, j, assign[i]))
		}
		i = j + 1
	}
	return strings.Join(parts, " ")
}

func uniqueInOrder(names []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
