package scenario

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
)

const fleetScenarioSrc = `
name: fleet-run
seed: 9
workload:
  app: escat
fleet_gen:
  io_nodes: 4
  cells: 3
  stagger_s: 0.05
assertions:
  expected: ok
  max_failed_attempts: 0
`

// fleetResultImage renders everything a fleet scenario run surfaces: the
// adapted resilient report's headline numbers, the per-cell attempt table,
// the fleet aggregates, and the assertion section.
func fleetResultImage(t *testing.T, shards int) string {
	t.Helper()
	sc, err := Parse([]byte(fleetScenarioSrc), "")
	if err != nil {
		t.Fatal(err)
	}
	sc.Shards = shards
	res, err := sc.Execute()
	if err != nil {
		t.Fatalf("Execute (shards=%d): %v", shards, err)
	}
	if res.FleetRun == nil {
		t.Fatalf("multi-cell scenario did not run as a fleet")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "wall=%d lost=%d cells=%d mail=%d\n",
		res.Report.Wall, res.Report.LostWork, len(res.FleetRun.Cells), res.FleetRun.Fabric.Mail)
	for i, a := range res.Report.Attempts {
		fmt.Fprintf(&b, "attempt %d start=%d end=%d failed=%v\n", i, a.Start, a.End, a.Failed)
	}
	fmt.Fprintf(&b, "final events=%d summary=%+v\n", len(res.Report.Final.Events), res.Report.Final.Summary)
	b.WriteString(RenderChecks(sc.Name, res.M, res.Checks))
	return b.String()
}

// TestExecuteFleetByteIdenticalAcrossShards is the DSL-level face of the
// shard-count oracle: a multi-cell scenario's full result must not depend on
// the -shards setting.
func TestExecuteFleetByteIdenticalAcrossShards(t *testing.T) {
	ref := fleetResultImage(t, 1)
	if !strings.Contains(ref, "Assertions (fleet-run): PASS") {
		t.Fatalf("fleet scenario did not pass its assertions:\n%s", ref)
	}
	for _, shards := range []int{2, 4} {
		if got := fleetResultImage(t, shards); got != ref {
			t.Errorf("fleet scenario result at shards=%d differs from the serial oracle:\n-- shards=1:\n%s\n-- shards=%d:\n%s",
				shards, ref, shards, got)
		}
	}
}

// TestFleetOptionsMapping checks the scenario → core.FleetOptions
// translation and the single-machine fallthrough.
func TestFleetOptionsMapping(t *testing.T) {
	sc, err := Parse([]byte(fleetScenarioSrc), "")
	if err != nil {
		t.Fatal(err)
	}
	fo, ok := sc.FleetOptions(4)
	if !ok {
		t.Fatal("cells=3 scenario reported no fleet options")
	}
	if fo.Cells != 3 || fo.Shards != 4 || fo.Seed != 9 {
		t.Fatalf("fleet options %+v: want cells=3 shards=4 seed=9", fo)
	}
	if fo.Stagger != 50*sim.Millisecond {
		t.Fatalf("stagger %v, want 50ms", fo.Stagger)
	}

	single, err := Parse([]byte("workload:\n  app: escat\n"), "t.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := single.FleetOptions(4); ok {
		t.Fatal("single-machine scenario reported fleet options")
	}
}

// TestFleetTraceReserveSizing checks Build sizes the trace arenas from the
// generated fleet shape instead of the serial default.
func TestFleetTraceReserveSizing(t *testing.T) {
	sc, err := Parse([]byte("workload:\n  app: escat\nfleet_gen:\n  compute_nodes: 64\n  io_nodes: 32\n"), "")
	if err != nil {
		t.Fatal(err)
	}
	rs, _, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if want := 64 * (64 + 32); rs.Study.TraceReserve != want {
		t.Fatalf("TraceReserve %d, want %d", rs.Study.TraceReserve, want)
	}
}
