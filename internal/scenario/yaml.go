package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// The scenario DSL accepts a YAML subset alongside JSON, so corpus files read
// like the Navarch stress-testing scenarios the ROADMAP points at without
// pulling a YAML dependency into the module. Supported: block mappings and
// sequences nested by indentation, "- " items (including inline "- key: val"
// mapping starts), scalars (null, bools, ints, floats, bare and quoted
// strings), "#" comments, and one-line flow sequences/empty collections.
// Not supported (rejected with a line number): tab indentation, anchors,
// aliases, tags, multi-line strings, and multi-level flow nesting.

// parseYAML decodes the subset into the same any-tree json.Unmarshal would
// produce: map[string]any, []any, string, float64, bool, nil.
func parseYAML(data []byte) (any, error) {
	lines, err := splitYAMLLines(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	p := &yamlParser{lines: lines}
	v, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, fmt.Errorf("yaml: line %d: content outside the document structure (check indentation)", p.lines[p.pos].num)
	}
	return v, nil
}

type yamlLine struct {
	indent int
	text   string // content with indentation and trailing comment stripped
	num    int    // 1-based source line
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// splitYAMLLines strips comments and blank lines and computes indentation.
func splitYAMLLines(src string) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		num := i + 1
		if strings.HasPrefix(strings.TrimLeft(raw, " \t"), "---") {
			continue // document marker
		}
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if indent < len(raw) && raw[indent] == '\t' {
			return nil, fmt.Errorf("yaml: line %d: tab indentation is not supported (use spaces)", num)
		}
		text := stripComment(raw[indent:])
		text = strings.TrimRight(text, " \t")
		if text == "" {
			continue
		}
		out = append(out, yamlLine{indent: indent, text: text, num: num})
	}
	return out, nil
}

// stripComment removes a trailing "# ..." comment, respecting quotes.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t'):
			return s[:i]
		}
	}
	return s
}

// parseBlock parses the run of lines at exactly this indent as one value — a
// sequence if the first line is an item, a mapping otherwise.
func (p *yamlParser) parseBlock(indent int) (any, error) {
	ln := p.lines[p.pos]
	if ln.indent != indent {
		return nil, fmt.Errorf("yaml: line %d: unexpected indentation %d (expected %d)", ln.num, ln.indent, indent)
	}
	if ln.text == "-" || strings.HasPrefix(ln.text, "- ") {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *yamlParser) parseSequence(indent int) (any, error) {
	out := []any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("yaml: line %d: unexpected indentation inside sequence", ln.num)
		}
		if ln.text != "-" && !strings.HasPrefix(ln.text, "- ") {
			break // a sibling mapping key ends the sequence
		}
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		if rest == "" {
			// Item body on the following, deeper-indented lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				out = append(out, nil)
				continue
			}
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		if key, val, isMap := splitKey(rest); isMap {
			// "- key: value" starts an inline mapping whose further keys sit
			// at the content column; rewrite the line and reparse as a map.
			contentIndent := ln.indent + (len(ln.text) - len(rest))
			p.lines[p.pos] = yamlLine{indent: contentIndent, text: rest, num: ln.num}
			_ = key
			_ = val
			v, err := p.parseMapping(contentIndent)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		v, err := parseScalar(rest, ln.num)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		p.pos++
	}
	return out, nil
}

func (p *yamlParser) parseMapping(indent int) (any, error) {
	out := map[string]any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("yaml: line %d: unexpected indentation %d inside mapping at %d", ln.num, ln.indent, indent)
		}
		if ln.text == "-" || strings.HasPrefix(ln.text, "- ") {
			return nil, fmt.Errorf("yaml: line %d: sequence item inside a mapping (check indentation)", ln.num)
		}
		key, rest, ok := splitKey(ln.text)
		if !ok {
			return nil, fmt.Errorf("yaml: line %d: expected \"key: value\", got %q", ln.num, ln.text)
		}
		key = unquoteKey(key)
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("yaml: line %d: duplicate key %q", ln.num, key)
		}
		if rest == "" {
			// Nested block (or an empty value if nothing is deeper).
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				out[key] = nil
				continue
			}
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			out[key] = v
			continue
		}
		v, err := parseScalar(rest, ln.num)
		if err != nil {
			return nil, err
		}
		out[key] = v
		p.pos++
	}
	return out, nil
}

// splitKey splits "key: rest" at the first colon outside quotes; a colon must
// be followed by a space or end the line to count (so "12:30:00" is a scalar).
func splitKey(s string) (key, rest string, ok bool) {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ':':
			if i+1 == len(s) {
				return strings.TrimSpace(s[:i]), "", true
			}
			if s[i+1] == ' ' {
				return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), true
			}
		}
	}
	return "", "", false
}

func unquoteKey(key string) string {
	if len(key) >= 2 {
		if (key[0] == '"' && key[len(key)-1] == '"') || (key[0] == '\'' && key[len(key)-1] == '\'') {
			return key[1 : len(key)-1]
		}
	}
	return key
}

// parseScalar interprets one scalar (or one-line flow collection).
func parseScalar(s string, num int) (any, error) {
	switch {
	case s == "" || s == "~" || s == "null":
		return nil, nil
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case s == "[]":
		return []any{}, nil
	case s == "{}":
		return map[string]any{}, nil
	}
	if s[0] == '[' {
		if s[len(s)-1] != ']' {
			return nil, fmt.Errorf("yaml: line %d: unterminated flow sequence %q", num, s)
		}
		var out []any
		for _, part := range splitFlow(s[1 : len(s)-1]) {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			if strings.ContainsAny(part, "[{") {
				return nil, fmt.Errorf("yaml: line %d: nested flow collections are not supported", num)
			}
			v, err := parseScalar(part, num)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		if out == nil {
			out = []any{}
		}
		return out, nil
	}
	if s[0] == '{' {
		return nil, fmt.Errorf("yaml: line %d: flow mappings are not supported (use block style)", num)
	}
	if s[0] == '"' || s[0] == '\'' {
		if len(s) < 2 || s[len(s)-1] != s[0] {
			return nil, fmt.Errorf("yaml: line %d: unterminated string %s", num, s)
		}
		body := s[1 : len(s)-1]
		if s[0] == '"' {
			unq, err := strconv.Unquote(s)
			if err != nil {
				return nil, fmt.Errorf("yaml: line %d: bad string %s: %v", num, s, err)
			}
			return unq, nil
		}
		return strings.ReplaceAll(body, "''", "'"), nil
	}
	if s[0] == '&' || s[0] == '*' || s[0] == '!' || s[0] == '|' || s[0] == '>' {
		return nil, fmt.Errorf("yaml: line %d: %q: anchors, tags and block scalars are not supported", num, s)
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return float64(n), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

// splitFlow splits a flow-sequence body at commas outside quotes.
func splitFlow(s string) []string {
	var parts []string
	var quote byte
	last := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ',':
			parts = append(parts, s[last:i])
			last = i + 1
		}
	}
	parts = append(parts, s[last:])
	return parts
}
