package scenario

import (
	"fmt"
	"math"

	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// Fleet is the realized machine shape a fleet_gen section expands to.
type Fleet struct {
	ComputeNodes int
	IONodes      int

	// Nodes is the per-I/O-node configuration (empty for a homogeneous
	// fleet); Assignment names each node's template.
	Nodes      []pfs.NodeConfig
	Assignment []string

	// BurstPerNode is the per-compute-node burst-log capacity drawn from the
	// templates (empty when no template sets burst_mb).
	BurstPerNode []int64

	// Startup is the bring-up schedule: one IONodeOutage per node that comes
	// online after t=0, holding it down until its start instant.
	Startup []fault.Event
}

// Zones returns the fleet's per-node outage domains (all zero when
// homogeneous).
func (f *Fleet) Zones() []int {
	z := make([]int, f.IONodes)
	for i, n := range f.Nodes {
		z[i] = n.Zone
	}
	return z
}

// Seed-stream tags: each random aspect of fleet expansion draws from its own
// substream, so adding jitter to a scenario does not reshuffle its templates.
const (
	seedTemplates = 0x466c6565 // "Flee"
	seedBurst     = 0x42757273 // "Burs"
	seedStartup   = 0x53746172 // "Star"
)

// expandFleet realizes the fleet_gen section against the study's base shape:
// baseCompute/baseIO are the scale defaults, baseDisk the application's
// calibrated array model that templates override field by field.
func expandFleet(s *Scenario, baseCompute, baseIO int, baseDisk disk.ArrayConfig) (*Fleet, error) {
	f := &Fleet{ComputeNodes: baseCompute, IONodes: baseIO}
	fg := s.FleetGen
	if fg == nil {
		return f, nil
	}
	if fg.ComputeNodes > 0 {
		f.ComputeNodes = fg.ComputeNodes
	}
	if fg.IONodes > 0 {
		f.IONodes = fg.IONodes
	}

	if len(fg.Templates) > 0 {
		counts, err := apportion(fg.Templates, f.IONodes)
		if err != nil {
			return nil, err
		}
		// Lay the templates out deterministically, then a seeded shuffle
		// interleaves them so zones and disk speeds are not index-clustered.
		order := make([]int, 0, f.IONodes)
		for ti, n := range counts {
			for k := 0; k < n; k++ {
				order = append(order, ti)
			}
		}
		shuffle(order, sim.NewRNG(s.Seed^seedTemplates))
		f.Nodes = make([]pfs.NodeConfig, f.IONodes)
		f.Assignment = make([]string, f.IONodes)
		for i, ti := range order {
			f.Nodes[i] = nodeFromTemplate(fg.Templates[ti], baseDisk)
			f.Assignment[i] = fg.Templates[ti].Name
		}

		// Compute-node burst logs draw from the same weighted template pool
		// (their own substream, so fleets with and without the burst tier
		// share an I/O-node layout).
		if s.burstEnabled() && anyBurst(fg.Templates) {
			rng := sim.NewRNG(s.Seed ^ seedBurst)
			f.BurstPerNode = make([]int64, f.ComputeNodes)
			for i := range f.BurstPerNode {
				t := fg.Templates[drawWeighted(fg.Templates, rng)]
				f.BurstPerNode[i] = int64(t.BurstMB * float64(1<<20))
			}
		}
	}

	f.Startup = startupEvents(fg.Startup, f.IONodes, s.Seed)
	return f, nil
}

// nodeFromTemplate builds one node's override config. Zero template fields
// leave the corresponding override unset, keeping the fleet default.
func nodeFromTemplate(t Template, baseDisk disk.ArrayConfig) pfs.NodeConfig {
	n := pfs.NodeConfig{Template: t.Name, Zone: t.Zone}
	if t.DiskMBs > 0 || t.PositionMs > 0 || t.DiskStreams > 0 {
		d := baseDisk
		if t.DiskMBs > 0 {
			d.BWBytesPerS = t.DiskMBs * 1e6
		}
		if t.PositionMs > 0 {
			d.Position = sim.FromSeconds(t.PositionMs / 1e3)
		}
		if t.DiskStreams > 0 {
			d.StreamCache = t.DiskStreams
		}
		n.Disk = &d
	}
	if t.CacheMB > 0 {
		n.CacheBytes = int64(t.CacheMB * float64(1<<20))
	}
	if t.BurstMB > 0 {
		n.BurstBytes = int64(t.BurstMB * float64(1<<20))
	}
	return n
}

// apportion assigns ioNodes across the templates: exact counts first, the
// remainder split by weight with largest-remainder rounding (a template with
// neither count nor weight gets weight 1).
func apportion(ts []Template, ioNodes int) ([]int, error) {
	counts := make([]int, len(ts))
	rest := ioNodes
	var totalW float64
	for i, t := range ts {
		if t.Count > 0 {
			counts[i] = t.Count
			rest -= t.Count
		} else {
			totalW += effWeight(t)
		}
	}
	if rest < 0 {
		return nil, fmt.Errorf("fleet_gen: template counts pin %d nodes but the fleet has %d I/O nodes", ioNodes-rest, ioNodes)
	}
	if rest > 0 && totalW == 0 {
		return nil, fmt.Errorf("fleet_gen: %d I/O nodes left over after fixed-count templates; add a weighted template to absorb them", rest)
	}
	if rest == 0 {
		return counts, nil
	}
	type frac struct {
		idx int
		f   float64
	}
	var fracs []frac
	assigned := 0
	for i, t := range ts {
		if t.Count > 0 {
			continue
		}
		share := float64(rest) * effWeight(t) / totalW
		whole := int(math.Floor(share))
		counts[i] += whole
		assigned += whole
		fracs = append(fracs, frac{i, share - float64(whole)})
	}
	// Hand the rounding leftovers to the largest fractional parts, earlier
	// templates first on ties — fully deterministic.
	for assigned < rest {
		best := -1
		for j, fr := range fracs {
			if best < 0 || fr.f > fracs[best].f {
				best = j
			}
		}
		counts[fracs[best].idx]++
		fracs[best].f = -1
		assigned++
	}
	return counts, nil
}

func effWeight(t Template) float64 {
	if t.Count > 0 {
		return 0
	}
	if t.Weight > 0 {
		return t.Weight
	}
	return 1
}

func anyBurst(ts []Template) bool {
	for _, t := range ts {
		if t.BurstMB > 0 {
			return true
		}
	}
	return false
}

// drawWeighted picks a template index by weight (counts act as weights here,
// so a count-pinned flavor is proportionally represented among compute nodes).
func drawWeighted(ts []Template, rng *sim.RNG) int {
	var total float64
	for _, t := range ts {
		total += drawWeight(t)
	}
	x := rng.Float64() * total
	for i, t := range ts {
		x -= drawWeight(t)
		if x < 0 {
			return i
		}
	}
	return len(ts) - 1
}

func drawWeight(t Template) float64 {
	if t.Count > 0 {
		return float64(t.Count)
	}
	if t.Weight > 0 {
		return t.Weight
	}
	return 1
}

// shuffle is a seeded Fisher-Yates.
func shuffle(order []int, rng *sim.RNG) {
	for i := len(order) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
}

// startupEvents realizes a bring-up pattern as hold-down outages: node i is
// out from t=0 until its online instant. Node 0 always starts online so the
// fleet is never entirely dark.
func startupEvents(st *Startup, ioNodes int, seed uint64) []fault.Event {
	if st == nil || st.Pattern == "" || st.Pattern == "instant" || ioNodes < 2 {
		return nil
	}
	over := st.OverS
	if over <= 0 {
		over = 2
	}
	rng := sim.NewRNG(seed ^ seedStartup)
	var out []fault.Event
	for i := 0; i < ioNodes; i++ {
		frac := float64(i) / float64(ioNodes-1)
		var t float64
		switch st.Pattern {
		case "linear":
			t = over * frac
		case "exponential":
			// Early nodes race up, the tail straggles: 2^(k·f) growth
			// normalized to [0, over] with k=3 (an 8x head-to-tail spread).
			const k = 3
			t = over * (math.Exp2(k*frac) - 1) / (math.Exp2(k) - 1)
		case "wave":
			waves := st.Waves
			if waves <= 0 {
				waves = 4
			}
			if waves > 1 {
				batch := i * waves / ioNodes
				t = over * float64(batch) / float64(waves-1)
			}
		}
		if st.JitterFrac > 0 {
			// Jitter is drawn for every node in index order so the stream
			// stays aligned across patterns; node 0 discards its draw.
			j := rng.Float64() * st.JitterFrac * over
			if i > 0 {
				t += j
			}
		}
		if t <= 0 {
			continue
		}
		out = append(out, fault.Event{
			Kind:     fault.IONodeOutage,
			At:       0,
			Node:     i,
			Duration: sim.FromSeconds(t),
		})
	}
	return out
}
