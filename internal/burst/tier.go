package burst

import (
	"fmt"
	"strings"

	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Tier is one machine's burst-buffer layer: a workload.FS that passes
// metadata and reads through to the PFS but absorbs checkpoint-class and
// M_LOG write traffic into per-compute-node local logs, drained
// asynchronously by per-node daemons.
//
// Interception is by access mode (every M_LOG write) and by file name (every
// write on a handle whose file matches a registered prefix — the resilience
// driver registers the checkpoint file base). Everything else behaves exactly
// as on the raw PFS. Reads of a file with undrained records wait for its
// drain first, so readers always observe the logical image; mixing M_LOG
// reads and writes on one open file is not supported (no application in the
// suite does).
type Tier struct {
	eng   *sim.Engine
	phys  *pfs.FileSystem
	inner workload.FS
	cfg   Config

	phase    string
	logs     []*nodeLog
	files    map[string]*fileState
	prefixes []string

	seq uint64
	st  Stats
}

// nodeLog is one compute node's local log.
type nodeLog struct {
	node  int
	cap   int64     // this node's log capacity
	used  int64     // committed, undrained bytes
	queue []*Record // FIFO drain order
	live  bool      // drain daemon running
	rng   *sim.RNG
	space []*sim.Completion // commits blocked on a full log
}

// fileState tracks one target file's undrained records and logical extent.
type fileState struct {
	pendingBytes int64
	pendingRecs  int
	logical      int64             // highest committed logical end
	logOff       int64             // shared pointer for intercepted M_LOG handles
	waiters      []*sim.Completion // readers blocked on the pending drain
}

// New builds a burst tier over a machine's PFS for a compute partition of the
// given size. The tier implements workload.FS; applications run against it in
// place of the raw wrapper.
func New(eng *sim.Engine, phys *pfs.FileSystem, nodes int, cfg Config) (*Tier, error) {
	cfg = cfg.Normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nodes < 1 {
		return nil, fmt.Errorf("burst: %d compute nodes", nodes)
	}
	t := &Tier{
		eng:   eng,
		phys:  phys,
		inner: workload.WrapPFS(phys),
		cfg:   cfg,
		files: make(map[string]*fileState),
		logs:  make([]*nodeLog, nodes),
	}
	for _, pre := range cfg.Prefixes {
		t.InterceptPrefix(pre)
	}
	return t, nil
}

// InterceptPrefix routes writes of files whose names start with prefix
// through the log regardless of access mode; the resilience driver registers
// the checkpoint file base here.
func (t *Tier) InterceptPrefix(prefix string) {
	if prefix == "" {
		return
	}
	t.prefixes = append(t.prefixes, prefix)
}

// Config returns the tier's (normalized) configuration.
func (t *Tier) Config() Config { return t.cfg }

// log returns (creating on first use) a node's local log.
func (t *Tier) log(node int) *nodeLog {
	for node >= len(t.logs) {
		t.logs = append(t.logs, nil)
	}
	if t.logs[node] == nil {
		t.logs[node] = &nodeLog{
			node: node,
			cap:  t.nodeCapacity(node),
			rng:  sim.NewRNG(t.cfg.Seed + uint64(node)).Split(),
		}
	}
	return t.logs[node]
}

// nodeCapacity resolves a node's log capacity under the heterogeneous-fleet
// overrides.
func (t *Tier) nodeCapacity(node int) int64 {
	if node < len(t.cfg.PerNodeCapacity) && t.cfg.PerNodeCapacity[node] > 0 {
		return t.cfg.PerNodeCapacity[node]
	}
	return t.cfg.CapacityBytes
}

// state returns (creating on first use) a file's pending-drain state.
func (t *Tier) state(name string) *fileState {
	st, ok := t.files[name]
	if !ok {
		st = &fileState{}
		t.files[name] = st
	}
	return st
}

// intercepts reports whether writes through a handle on (name, mode) commit
// to the local log.
func (t *Tier) intercepts(name string, mode iotrace.AccessMode) bool {
	if mode == iotrace.ModeLog {
		return true
	}
	for _, pre := range t.prefixes {
		if strings.HasPrefix(name, pre) {
			return true
		}
	}
	return false
}

// wrap interposes the log on intercepted handles; everything else passes
// through untouched.
func (t *Tier) wrap(in workload.Handle, node int, name string, mode iotrace.AccessMode) workload.Handle {
	if !t.intercepts(name, mode) {
		return in
	}
	return &handle{t: t, in: in, node: node, name: name, mode: mode}
}

// Create implements workload.FS.
func (t *Tier) Create(p *sim.Process, node int, name string, mode iotrace.AccessMode) (workload.Handle, error) {
	h, err := t.inner.Create(p, node, name, mode)
	if err != nil {
		return nil, err
	}
	return t.wrap(h, node, name, mode), nil
}

// Open implements workload.FS.
func (t *Tier) Open(p *sim.Process, node int, name string, mode iotrace.AccessMode) (workload.Handle, error) {
	if !t.intercepts(name, mode) {
		// A non-intercepted handle sees the raw PFS image; make sure the
		// log holds nothing newer first.
		t.waitDrained(p, name)
	}
	h, err := t.inner.Open(p, node, name, mode)
	if err != nil {
		return nil, err
	}
	return t.wrap(h, node, name, mode), nil
}

// OpenRecord implements workload.FS. M_RECORD traffic is never intercepted.
func (t *Tier) OpenRecord(p *sim.Process, node int, name string, recordLen int64) (workload.Handle, error) {
	t.waitDrained(p, name)
	return t.inner.OpenRecord(p, node, name, recordLen)
}

// Preload implements workload.FS.
func (t *Tier) Preload(name string, size int64) (pfs.FileInfo, error) {
	return t.inner.Preload(name, size)
}

// ReserveIDs implements workload.FS.
func (t *Tier) ReserveIDs(n int) { t.inner.ReserveIDs(n) }

// SetPhase implements workload.FS; the tier shadows the label so committed
// records carry their workload class.
func (t *Tier) SetPhase(name string) {
	t.phase = name
	t.inner.SetPhase(name)
}

// Phase returns the current phase label (the checkpoint coordinator's
// phase-setter handshake).
func (t *Tier) Phase() string { return t.phase }

// Stat implements workload.FS, reporting the logical extent — committed but
// undrained bytes count.
func (t *Tier) Stat(name string) (pfs.FileInfo, bool) {
	fi, ok := t.inner.Stat(name)
	if !ok {
		return fi, ok
	}
	if st, have := t.files[name]; have && st.logical > fi.Size {
		fi.Size = st.logical
	}
	return fi, true
}

// commit absorbs one write into the node's local log (or bypasses oversized
// records straight to the PFS) and returns when the data is locally durable.
func (t *Tier) commit(p *sim.Process, node int, name string, off, n int64, mode iotrace.AccessMode) (int64, error) {
	start := p.Now()
	if n >= t.nodeCapacity(node) {
		// The log cannot hold the record even empty: write through, after
		// any pending records on the file so ordering is preserved.
		t.waitDrained(p, name)
		t.st.Bypassed++
		t.st.BypassedBytes += n
		return t.phys.Access(p, node, name, iotrace.OpWrite, off, n)
	}
	lg := t.log(node)
	for lg.used+n > lg.cap {
		// Backpressure: block until the drain daemon frees space.
		t.st.Backpressure++
		w := sim.NewCompletion("burst-space")
		lg.space = append(lg.space, w)
		s0 := p.Now()
		w.Await(p)
		t.st.BackpressureStall += p.Now() - s0
	}
	p.Sleep(t.cfg.CommitOverhead + bwTime(float64(n), t.cfg.CommitBWBytesPerS))
	t.seq++
	rec := Record{
		Seq: t.seq, Node: node, File: name, Offset: off, Bytes: n,
		Class: t.phase, commitAt: p.Now(),
	}.Seal()
	lg.queue = append(lg.queue, &rec)
	lg.used += n
	st := t.state(name)
	st.pendingRecs++
	st.pendingBytes += n
	if end := off + n; end > st.logical {
		st.logical = end
	}
	t.st.Committed++
	t.st.CommittedBytes += n
	t.st.CommitTime += p.Now() - start
	t.ensureDrainer(node)
	// The application saw a completed write; it belongs in the trace.
	t.phys.RecordClientOp(node, iotrace.OpWrite, name, off, n, start, mode)
	return n, nil
}

// waitDrained blocks until no committed record for the file remains in any
// node's log, so a subsequent read observes the full logical image.
func (t *Tier) waitDrained(p *sim.Process, name string) {
	st, ok := t.files[name]
	if !ok {
		return
	}
	for st.pendingRecs > 0 {
		t.st.ReadStalls++
		w := sim.NewCompletion("burst-pending")
		st.waiters = append(st.waiters, w)
		s0 := p.Now()
		w.Await(p)
		t.st.ReadStallTime += p.Now() - s0
	}
}

// UndrainedNode reports a node log's committed-but-undrained content — the
// data a node loss destroys.
func (t *Tier) UndrainedNode(node int) (bytes, records int64) {
	if node < 0 || node >= len(t.logs) || t.logs[node] == nil {
		return 0, 0
	}
	lg := t.logs[node]
	return lg.used, int64(len(lg.queue))
}

// UndrainedFiles returns the per-file undrained byte totals across all node
// logs; the resilience driver uses it to reject checkpoint generations whose
// newest records died in a volatile log.
func (t *Tier) UndrainedFiles() map[string]int64 {
	out := make(map[string]int64)
	for name, st := range t.files {
		if st.pendingBytes > 0 {
			out[name] = st.pendingBytes
		}
	}
	return out
}

// Stats returns a snapshot of the tier's counters, including the undrained
// residue at snapshot time.
func (t *Tier) Stats() Stats {
	st := t.st
	for _, lg := range t.logs {
		if lg == nil {
			continue
		}
		st.UndrainedBytes += lg.used
		st.UndrainedRecords += int64(len(lg.queue))
	}
	return st
}

// bwTime converts a byte count at a bandwidth into simulated time.
func bwTime(bytes, bw float64) sim.Time {
	if bw <= 0 || bytes <= 0 {
		return 0
	}
	return sim.Time(bytes / bw * float64(sim.Second))
}

// wake completes and clears a waiter list.
func wake(p *sim.Process, ws *[]*sim.Completion) {
	list := *ws
	*ws = nil
	for _, w := range list {
		w.Complete(p)
	}
}

// Interface-satisfaction check.
var _ workload.FS = (*Tier)(nil)
