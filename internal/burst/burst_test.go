package burst

import (
	"testing"

	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// harness builds an engine, a machine-shaped PFS, and a tier over it.
func harness(t *testing.T, nodes int, cfg Config) (*workload.Machine, *Tier) {
	t.Helper()
	m, err := workload.NewMachine(workload.MachineConfig{
		ComputeNodes: nodes, PFS: pfs.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Enabled = true
	tier, err := New(m.Eng, m.PFS, nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, tier
}

func TestCommitAbsorbsAndDrains(t *testing.T) {
	m, tier := harness(t, 2, Config{})
	const recBytes, recs = 64 << 10, 8
	if _, err := tier.Preload("log.dat", 0); err != nil {
		t.Fatal(err)
	}
	for node := 0; node < 2; node++ {
		node := node
		m.Eng.Spawn("writer", func(p *sim.Process) {
			h, err := tier.Open(p, node, "log.dat", iotrace.ModeLog)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < recs; i++ {
				if _, err := h.Write(p, recBytes); err != nil {
					t.Error(err)
					return
				}
			}
			if err := h.Close(p); err != nil {
				t.Error(err)
			}
		})
	}
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := tier.Stats()
	wantBytes := int64(2 * recs * recBytes)
	if st.Committed != 2*recs || st.CommittedBytes != wantBytes {
		t.Errorf("committed %d records %d bytes, want %d / %d",
			st.Committed, st.CommittedBytes, 2*recs, wantBytes)
	}
	if st.Drained != st.Committed || st.DrainedBytes != wantBytes {
		t.Errorf("drained %d records %d bytes, want all %d / %d",
			st.Drained, st.DrainedBytes, st.Committed, wantBytes)
	}
	if st.UndrainedRecords != 0 || st.UndrainedBytes != 0 {
		t.Errorf("undrained residue %d records %d bytes after engine drained",
			st.UndrainedRecords, st.UndrainedBytes)
	}
	if st.AbsorbRatio() != 1 {
		t.Errorf("absorb ratio %v, want 1", st.AbsorbRatio())
	}
	// Both nodes appended through the shared M_LOG pointer: the drained PFS
	// image must cover every byte exactly once.
	fi, ok := m.PFS.Stat("log.dat")
	if !ok || fi.Size != wantBytes {
		t.Errorf("PFS image %d bytes (ok=%v), want %d", fi.Size, ok, wantBytes)
	}
}

func TestBackpressureBoundsLogUse(t *testing.T) {
	m, tier := harness(t, 1, Config{CapacityBytes: 256 << 10})
	const recBytes, recs = 64 << 10, 32
	m.Eng.Spawn("writer", func(p *sim.Process) {
		h, err := tier.Create(p, 0, "log.dat", iotrace.ModeLog)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < recs; i++ {
			if _, err := h.Write(p, recBytes); err != nil {
				t.Error(err)
				return
			}
			if used, _ := tier.UndrainedNode(0); used > 256<<10 {
				t.Errorf("log used %d bytes over the %d capacity", used, 256<<10)
			}
		}
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := tier.Stats()
	if st.Backpressure == 0 || st.BackpressureStall == 0 {
		t.Errorf("32x64KB through a 256KB log saw no backpressure: %+v", st)
	}
	if st.Drained != recs {
		t.Errorf("drained %d of %d records", st.Drained, recs)
	}
}

func TestOversizedRecordBypasses(t *testing.T) {
	m, tier := harness(t, 1, Config{CapacityBytes: 1 << 20})
	m.Eng.Spawn("writer", func(p *sim.Process) {
		h, err := tier.Create(p, 0, "big.dat", iotrace.ModeLog)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := h.Write(p, 256<<10); err != nil { // fits: absorbed
			t.Error(err)
		}
		if _, err := h.Write(p, 2<<20); err != nil { // larger than the log
			t.Error(err)
		}
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := tier.Stats()
	if st.Committed != 1 || st.Bypassed != 1 || st.BypassedBytes != 2<<20 {
		t.Errorf("committed %d bypassed %d (%d bytes), want 1/1/%d",
			st.Committed, st.Bypassed, st.BypassedBytes, 2<<20)
	}
	// The bypass waited for the earlier record's drain, so the image is the
	// in-order concatenation.
	fi, ok := m.PFS.Stat("big.dat")
	if !ok || fi.Size != 256<<10+2<<20 {
		t.Errorf("image %d bytes (ok=%v), want %d", fi.Size, ok, int64(256<<10+2<<20))
	}
}

func TestReadWaitsForDrain(t *testing.T) {
	m, tier := harness(t, 1, Config{DrainDelay: 50 * sim.Millisecond})
	var readBytes int64
	m.Eng.Spawn("writer-reader", func(p *sim.Process) {
		h, err := tier.Create(p, 0, "wr.dat", iotrace.ModeLog)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := h.Write(p, 128<<10); err != nil {
			t.Error(err)
			return
		}
		// A non-intercepted open sees the raw PFS: it must wait out the
		// pending drain before its reader touches the file.
		r, err := tier.Open(p, 0, "wr.dat", iotrace.ModeUnix)
		if err != nil {
			t.Error(err)
			return
		}
		readBytes, err = r.Read(p, 128<<10)
		if err != nil {
			t.Error(err)
		}
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := tier.Stats()
	if st.ReadStalls == 0 || st.ReadStallTime == 0 {
		t.Errorf("reader raced the drain: %+v", st)
	}
	if readBytes != 128<<10 {
		t.Errorf("read %d bytes, want %d", readBytes, 128<<10)
	}
}

func TestCompressionShrinksWire(t *testing.T) {
	m, tier := harness(t, 1, Config{
		Compress: CompressConfig{Enabled: true, Ratio: 2, CPUBytesPerS: 1e9},
	})
	m.Eng.Spawn("writer", func(p *sim.Process) {
		h, err := tier.Create(p, 0, "c.dat", iotrace.ModeLog)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := h.Write(p, 1<<20); err != nil {
			t.Error(err)
		}
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := tier.Stats()
	if st.WireBytes != 512<<10 {
		t.Errorf("wire bytes %d, want %d at ratio 2", st.WireBytes, 512<<10)
	}
	if st.CompressSavedBytes() != 512<<10 || st.CompressTime == 0 {
		t.Errorf("saved %d bytes in %v CPU, want %d and nonzero",
			st.CompressSavedBytes(), st.CompressTime, 512<<10)
	}
	// The logical image still covers the full uncompressed extent.
	fi, ok := m.PFS.Stat("c.dat")
	if !ok || fi.Size != 1<<20 {
		t.Errorf("image %d bytes (ok=%v), want %d", fi.Size, ok, 1<<20)
	}
}

// independentWriteImage runs a prefix-intercepted M_UNIX writer with per-node
// files and returns the tier stats — the checkpoint-shaped traffic pattern.
func prefixRun(t *testing.T, cfg Config) (Stats, sim.Time) {
	t.Helper()
	m, tier := harness(t, 4, cfg)
	tier.InterceptPrefix("app.ckpt")
	if _, err := tier.Preload("app.ckpt.0", 0); err != nil {
		t.Fatal(err)
	}
	for node := 0; node < 4; node++ {
		node := node
		m.Eng.Spawn("ckpt-writer", func(p *sim.Process) {
			h, err := tier.Open(p, node, "app.ckpt.0", iotrace.ModeUnix)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := h.Seek(p, int64(node)*(1<<20), pfs.SeekStart); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 4; i++ {
				if _, err := h.Write(p, 256<<10); err != nil {
					t.Error(err)
					return
				}
			}
			if err := h.Close(p); err != nil {
				t.Error(err)
			}
		})
	}
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	fi, ok := m.PFS.Stat("app.ckpt.0")
	if !ok || fi.Size != 4<<20 {
		t.Fatalf("image %d bytes (ok=%v), want %d", fi.Size, ok, 4<<20)
	}
	return tier.Stats(), tier.Stats().LastDrainEnd
}

func TestPrefixInterceptionAndDeterminism(t *testing.T) {
	cfg := Config{Seed: 11, JitterFrac: 0.2}
	a, endA := prefixRun(t, cfg)
	b, endB := prefixRun(t, cfg)
	if a != b || endA != endB {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if a.Committed != 16 || a.CommittedBytes != 4<<20 {
		t.Errorf("prefix interception absorbed %d records %d bytes, want 16 / %d",
			a.Committed, a.CommittedBytes, 4<<20)
	}
	c, _ := prefixRun(t, Config{Seed: 12, JitterFrac: 0.2})
	if a.DrainTime == c.DrainTime {
		t.Logf("note: different jitter seeds drained in identical time")
	}
}

func TestValidateRejectsNonsense(t *testing.T) {
	bad := []Config{
		{Enabled: true, CapacityBytes: -1, CommitBWBytesPerS: 1e6, MaxDrainRetries: 1},
		{Enabled: true, CapacityBytes: 1 << 20, CommitBWBytesPerS: -1, MaxDrainRetries: 1},
		{Enabled: true, CapacityBytes: 1 << 20, CommitBWBytesPerS: 1e6,
			MaxDrainRetries: 1, JitterFrac: 1.5},
		{Enabled: true, CapacityBytes: 1 << 20, CommitBWBytesPerS: 1e6,
			MaxDrainRetries: 1, DrainBWBytesPerS: -2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("disabled zero config rejected: %v", err)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestRecordSealVerifyRoundtrip(t *testing.T) {
	r := Record{Seq: 42, Node: 3, File: "app.ckpt.1", Offset: 81920, Bytes: 65536,
		Class: "checkpoint"}.Seal()
	if !r.Verify() {
		t.Fatal("sealed record does not verify")
	}
	tampered := r
	tampered.Offset += 512
	if tampered.Verify() {
		t.Error("offset-shifted record still verifies")
	}
	enc := r.Encode()
	dec, n, err := DecodeRecord(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(enc) {
		t.Errorf("decode consumed %d of %d bytes", n, len(enc))
	}
	if dec.Seq != r.Seq || dec.Node != r.Node || dec.File != r.File ||
		dec.Offset != r.Offset || dec.Bytes != r.Bytes || dec.Class != r.Class ||
		dec.Sum != r.Sum {
		t.Errorf("roundtrip mismatch: %+v vs %+v", dec, r)
	}
	enc[4] ^= 0xff // corrupt Seq: the embedded checksum must catch it
	if _, _, err := DecodeRecord(enc); err == nil {
		t.Error("decode accepted a corrupted record")
	}
}
