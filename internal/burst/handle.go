package burst

import (
	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// handle is an intercepted descriptor: writes commit to the node-local log,
// reads and metadata pass through after the file's pending drain completes.
// Because writes bypass the inner handle its file pointer goes stale; the
// wrapper shadows the pointer in off and re-synchronizes the inner handle
// before any pass-through data access.
type handle struct {
	t    *Tier
	in   workload.Handle
	node int
	name string
	mode iotrace.AccessMode
	off  int64 // shadow pointer for the independent-pointer modes
}

// independent reports whether the handle carries its own file pointer
// (intercepted M_LOG handles take offsets from the tier's shared pointer).
func (h *handle) independent() bool { return h.mode != iotrace.ModeLog }

// sync repositions the inner handle at the shadow pointer so a delegated
// access lands where the intercepted stream left off.
func (h *handle) sync(p *sim.Process) error {
	if !h.independent() || h.in.Offset() == h.off {
		return nil
	}
	_, err := h.in.Seek(p, h.off, pfs.SeekStart)
	return err
}

// Write commits to the local log and returns at local-durability speed.
func (h *handle) Write(p *sim.Process, n int64) (int64, error) {
	if n < 0 {
		return 0, pfs.ErrBadRequest
	}
	var off int64
	if h.independent() {
		off = h.off
	} else {
		// M_LOG: the tier keeps the shared pointer; arrival order is
		// commit order.
		st := h.t.state(h.name)
		off = st.logOff
		st.logOff += n
	}
	done, err := h.t.commit(p, h.node, h.name, off, n, h.mode)
	if h.independent() {
		h.off += done
	}
	return done, err
}

// Read waits out the file's pending drain, then passes through.
func (h *handle) Read(p *sim.Process, n int64) (int64, error) {
	h.t.waitDrained(p, h.name)
	if err := h.sync(p); err != nil {
		return 0, err
	}
	done, err := h.in.Read(p, n)
	if h.independent() {
		h.off = h.in.Offset()
	}
	return done, err
}

// ReadAsync waits out the pending drain, then passes through.
func (h *handle) ReadAsync(p *sim.Process, n int64) (workload.AsyncRead, error) {
	h.t.waitDrained(p, h.name)
	if err := h.sync(p); err != nil {
		return nil, err
	}
	ar, err := h.in.ReadAsync(p, n)
	if h.independent() {
		h.off = h.in.Offset()
	}
	return ar, err
}

// Seek repositions the shadow pointer, delegating for the modeled seek cost.
func (h *handle) Seek(p *sim.Process, offset int64, whence int) (int64, error) {
	target := offset
	switch whence {
	case pfs.SeekCurrent:
		target += h.off
	case pfs.SeekEnd:
		// End of the logical image, not of the (possibly shorter) PFS file.
		if fi, ok := h.t.Stat(h.name); ok {
			target += fi.Size
		}
	}
	done, err := h.in.Seek(p, target, pfs.SeekStart)
	if err != nil {
		return done, err
	}
	h.off = done
	return done, nil
}

// Flush is the tier's fast path: committed records are already locally
// durable, so the synchronous PFS flush the application would have paid
// becomes a no-op. The drain daemon persists them in the background.
func (h *handle) Flush(p *sim.Process) error { return nil }

// Close passes through; draining continues after the close.
func (h *handle) Close(p *sim.Process) error { return h.in.Close(p) }

// Lsize passes through for the modeled query cost but reports the logical
// extent including undrained records.
func (h *handle) Lsize(p *sim.Process) (int64, error) {
	n, err := h.in.Lsize(p)
	if err != nil {
		return n, err
	}
	if st, ok := h.t.files[h.name]; ok && st.logical > n {
		n = st.logical
	}
	return n, nil
}

// SetIOMode drains pending records first (the mode switch may change sharing
// semantics), then passes through.
func (h *handle) SetIOMode(p *sim.Process, mode iotrace.AccessMode, recordLen int64) error {
	h.t.waitDrained(p, h.name)
	if err := h.in.SetIOMode(p, mode, recordLen); err != nil {
		return err
	}
	h.mode = mode
	return nil
}

// Offset returns the shadow pointer (the inner pointer is stale between
// synchronizations).
func (h *handle) Offset() int64 {
	if h.independent() {
		return h.off
	}
	return h.in.Offset()
}

// Mode returns the handle's access mode.
func (h *handle) Mode() iotrace.AccessMode { return h.mode }

// Interface-satisfaction check.
var _ workload.Handle = (*handle)(nil)
