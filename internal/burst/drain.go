package burst

import (
	"fmt"

	"repro/internal/sim"
)

// ensureDrainer spawns a node's drain daemon when its log has work and no
// daemon is running. Daemons are spawned on demand and exit when the log
// empties, so an idle tier contributes no events and the engine's drain-time
// deadlock check stays meaningful.
func (t *Tier) ensureDrainer(node int) {
	lg := t.log(node)
	if lg.live || len(lg.queue) == 0 {
		return
	}
	lg.live = true
	t.eng.Spawn(fmt.Sprintf("burst-drain%d", node), func(p *sim.Process) {
		defer func() { lg.live = false }()
		t.runDrain(p, lg)
	})
}

// runDrain flushes the log FIFO until empty: per record a checksum
// re-verification, the compression stage, optional host-side pacing, then the
// PFS write with bounded retries. Every dequeue frees log space and wakes
// blocked committers and readers.
func (t *Tier) runDrain(p *sim.Process, lg *nodeLog) {
	if d := t.cfg.DrainDelay; d > 0 {
		if t.cfg.JitterFrac > 0 {
			d = lg.rng.Jitter(d, t.cfg.JitterFrac)
		}
		p.Sleep(d)
	}
	for len(lg.queue) > 0 {
		rec := lg.queue[0]
		start := p.Now()
		t.drainOne(p, rec)
		t.st.DrainTime += p.Now() - start
		t.finish(p, lg, rec)
	}
}

// drainOne lands one record on the PFS (or drops it, counted, when its
// checksum fails or the PFS refuses past the retry budget — dropping keeps
// the queue draining under a dead file system).
func (t *Tier) drainOne(p *sim.Process, rec *Record) {
	if v := t.cfg.VerifyBWBytesPerS; v > 0 {
		d := bwTime(float64(rec.Bytes), v)
		t.st.VerifyTime += d
		p.Sleep(d)
	}
	if !rec.Verify() {
		t.st.VerifyFails++
		return
	}
	wire := t.cfg.wireBytes(rec.Class, rec.Bytes)
	if t.cfg.Compress.Enabled && t.cfg.ratioFor(rec.Class) > 1 {
		d := bwTime(float64(rec.Bytes), t.cfg.Compress.CPUBytesPerS)
		t.st.CompressTime += d
		p.Sleep(d)
	}
	if bw := t.cfg.DrainBWBytesPerS; bw > 0 {
		p.Sleep(bwTime(float64(wire), bw))
	}
	for attempt := 0; attempt < t.cfg.MaxDrainRetries; attempt++ {
		if attempt > 0 {
			t.st.DrainRetries++
			p.Sleep(t.cfg.RetryDelay)
		}
		if err := t.phys.DrainWrite(p, rec.Node, rec.File, rec.Offset, rec.Bytes, wire); err == nil {
			t.st.Drained++
			t.st.DrainedBytes += rec.Bytes
			t.st.WireBytes += wire
			t.st.LastDrainEnd = p.Now()
			return
		}
	}
	t.st.DrainFails++
}

// finish dequeues a serviced record, releases its log space, and wakes
// whoever the space or the file's drain was blocking.
func (t *Tier) finish(p *sim.Process, lg *nodeLog, rec *Record) {
	lg.queue = lg.queue[1:]
	lg.used -= rec.Bytes
	st := t.files[rec.File]
	st.pendingRecs--
	st.pendingBytes -= rec.Bytes
	if st.pendingRecs == 0 {
		wake(p, &st.waiters)
	}
	wake(p, &lg.space)
}
