package burst

import (
	"bytes"
	"testing"
)

// FuzzRecordRoundTrip: any well-formed record must survive a
// seal/encode/decode cycle byte-exactly.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(1), 0, "app.ckpt.0", int64(0), int64(4096), "checkpoint")
	f.Add(uint64(1<<40), 127, "integrals.003", int64(81920*66), int64(81920), "pargos")
	f.Add(uint64(0), 0, "", int64(0), int64(0), "")
	f.Fuzz(func(t *testing.T, seq uint64, node int, file string, off, n int64, class string) {
		if node < 0 || off < 0 || n < 0 {
			t.Skip()
		}
		if len(file) > maxStringLen || len(class) > maxStringLen {
			t.Skip()
		}
		r := Record{Seq: seq, Node: node, File: file, Offset: off, Bytes: n,
			Class: class}.Seal()
		if !r.Verify() {
			t.Fatalf("sealed record does not verify: %+v", r)
		}
		enc := r.Encode()
		dec, used, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("decode of freshly encoded record: %v", err)
		}
		if used != len(enc) {
			t.Fatalf("decode consumed %d of %d bytes", used, len(enc))
		}
		if dec != r.withoutCommitAt() {
			t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", dec, r)
		}
	})
}

// withoutCommitAt strips the in-memory-only field for roundtrip comparison.
func (r Record) withoutCommitAt() Record {
	r.commitAt = 0
	return r
}

// FuzzDecodeRecord: arbitrary bytes must never panic the decoder, and
// anything it accepts must verify and re-encode to exactly the bytes it
// consumed.
func FuzzDecodeRecord(f *testing.F) {
	f.Add(Record{Seq: 7, Node: 3, File: "log.dat", Offset: 512, Bytes: 8192,
		Class: "pscf"}.Seal().Encode())
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x06, 0xf1, 0xb5})
	f.Fuzz(func(t *testing.T, buf []byte) {
		rec, used, err := DecodeRecord(buf)
		if err != nil {
			return
		}
		if used <= 0 || used > len(buf) {
			t.Fatalf("accepted record consumed %d of %d bytes", used, len(buf))
		}
		if !rec.Verify() {
			t.Fatalf("accepted record fails verification: %+v", rec)
		}
		if !bytes.Equal(rec.Encode(), buf[:used]) {
			t.Fatalf("accepted record does not re-encode to its input")
		}
	})
}
