package burst

import (
	"encoding/binary"
	"fmt"

	"repro/internal/integrity"
	"repro/internal/sim"
)

// Record is one committed log entry: a write the application considers
// durable, waiting for the drain daemon to land it on the PFS. Sum is the
// entry's checksum, computed at commit and re-verified at drain — the log is
// inside the end-to-end integrity domain, so a record that rots in the buffer
// is caught before it reaches storage.
type Record struct {
	Seq    uint64 // tier-wide commit sequence number
	Node   int    // committing compute node
	File   string // target PFS file
	Offset int64  // target file offset
	Bytes  int64  // logical length
	Class  string // workload class (application phase at commit time)
	Sum    uint64 // commit-time checksum

	commitAt sim.Time
}

// checksum derives the record's identity-bound checksum: like the storage
// layer's block checksums it folds position into the sum, so a record replayed
// at the wrong slot fails verification rather than landing silently.
func checksum(seq uint64, node int, off int64) uint64 {
	return integrity.Checksum(off^int64(seq), uint64(node)+seq<<1)
}

// Seal stamps the record's checksum from its identity fields; the commit path
// seals every record before it enters the log.
func (r Record) Seal() Record {
	r.Sum = checksum(r.Seq, r.Node, r.Offset)
	return r
}

// Verify recomputes the identity-bound checksum and compares it to Sum.
func (r Record) Verify() bool {
	return r.Sum == checksum(r.Seq, r.Node, r.Offset)
}

// recordMagic versions the on-wire record layout.
const recordMagic = uint32(0xb5f1_0601)

// maxStringLen bounds the decoded File/Class fields; real names are short and
// the limit keeps a corrupt length prefix from demanding gigabytes.
const maxStringLen = 4096

// Encode serializes the record in the log's fixed little-endian layout.
func (r Record) Encode() []byte {
	buf := make([]byte, 0, 64+len(r.File)+len(r.Class))
	buf = binary.LittleEndian.AppendUint32(buf, recordMagic)
	buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(r.Node)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Offset))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Bytes))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.File)))
	buf = append(buf, r.File...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Class)))
	buf = append(buf, r.Class...)
	buf = binary.LittleEndian.AppendUint64(buf, r.Sum)
	return buf
}

// DecodeRecord parses one encoded record, verifying the layout magic, the
// bounds of every field, and the embedded checksum against the record's
// identity. It returns the decoded record and the bytes consumed.
func DecodeRecord(buf []byte) (Record, int, error) {
	var r Record
	pos := 0
	u32 := func() (uint32, error) {
		if pos+4 > len(buf) {
			return 0, fmt.Errorf("burst: truncated record at byte %d", pos)
		}
		v := binary.LittleEndian.Uint32(buf[pos:])
		pos += 4
		return v, nil
	}
	u64 := func() (uint64, error) {
		if pos+8 > len(buf) {
			return 0, fmt.Errorf("burst: truncated record at byte %d", pos)
		}
		v := binary.LittleEndian.Uint64(buf[pos:])
		pos += 8
		return v, nil
	}
	str := func() (string, error) {
		n, err := u32()
		if err != nil {
			return "", err
		}
		if n > maxStringLen {
			return "", fmt.Errorf("burst: string length %d exceeds limit", n)
		}
		if pos+int(n) > len(buf) {
			return "", fmt.Errorf("burst: truncated string at byte %d", pos)
		}
		s := string(buf[pos : pos+int(n)])
		pos += int(n)
		return s, nil
	}

	magic, err := u32()
	if err != nil {
		return r, 0, err
	}
	if magic != recordMagic {
		return r, 0, fmt.Errorf("burst: bad record magic %#x", magic)
	}
	if r.Seq, err = u64(); err != nil {
		return r, 0, err
	}
	node, err := u64()
	if err != nil {
		return r, 0, err
	}
	r.Node = int(int64(node))
	if r.Node < 0 {
		return r, 0, fmt.Errorf("burst: negative node %d", r.Node)
	}
	off, err := u64()
	if err != nil {
		return r, 0, err
	}
	r.Offset = int64(off)
	n, err := u64()
	if err != nil {
		return r, 0, err
	}
	r.Bytes = int64(n)
	if r.Offset < 0 || r.Bytes < 0 {
		return r, 0, fmt.Errorf("burst: negative extent %d+%d", r.Offset, r.Bytes)
	}
	if r.File, err = str(); err != nil {
		return r, 0, err
	}
	if r.Class, err = str(); err != nil {
		return r, 0, err
	}
	if r.Sum, err = u64(); err != nil {
		return r, 0, err
	}
	if want := checksum(r.Seq, r.Node, r.Offset); r.Sum != want {
		return r, 0, fmt.Errorf("burst: record %d checksum %#x, want %#x",
			r.Seq, r.Sum, want)
	}
	return r, pos, nil
}
