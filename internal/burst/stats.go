package burst

import "repro/internal/sim"

// Stats summarizes one tier instance's activity. All byte counts are logical
// unless named otherwise.
type Stats struct {
	// Commit side.
	Committed      int64    // records absorbed by the log
	CommittedBytes int64    // logical bytes absorbed
	Bypassed       int64    // records too large for the log, written through
	BypassedBytes  int64    // bytes written through
	CommitTime     sim.Time // summed node time inside commits (the stall the tier leaves)

	// Backpressure and read synchronization.
	Backpressure      int64    // commits that blocked on a full log
	BackpressureStall sim.Time // summed time blocked on a full log
	ReadStalls        int64    // reads that waited for a file's pending drain
	ReadStallTime     sim.Time // summed time reads waited

	// Drain side.
	Drained      int64    // records landed on the PFS
	DrainedBytes int64    // logical bytes landed
	WireBytes    int64    // post-compression bytes physically transferred
	CompressTime sim.Time // daemon time spent in the compression stage
	VerifyTime   sim.Time // daemon time spent re-verifying record checksums
	DrainTime    sim.Time // daemon busy time end to end
	DrainRetries int64    // drain attempts beyond the first
	DrainFails   int64    // records dropped after exhausting retries
	VerifyFails  int64    // records dropped for a checksum mismatch
	LastDrainEnd sim.Time // completion instant of the latest drain write

	// Snapshot state (filled by Stats()).
	UndrainedRecords int64 // records still in a node log
	UndrainedBytes   int64 // logical bytes still in a node log
}

// CompressSavedBytes returns the drained volume compression removed.
func (s Stats) CompressSavedBytes() int64 { return s.DrainedBytes - s.WireBytes }

// AbsorbRatio returns the fraction of the tier's write bytes the log absorbed
// (commits vs bypasses); 1 when nothing bypassed, 0 when the tier saw nothing.
func (s Stats) AbsorbRatio() float64 {
	total := s.CommittedBytes + s.BypassedBytes
	if total == 0 {
		return 0
	}
	return float64(s.CommittedBytes) / float64(total)
}
