// Package burst models a per-compute-node burst buffer: a host-side logging
// tier between the application and the PFS, after the design of ParaLog/iFast.
// Checkpoint writes and M_LOG traffic commit to the node-local log at memory/
// NVM bandwidth and return immediately; a seeded, deterministic drain daemon
// flushes committed entries to the PFS in the background, through a modeled
// compression stage, with backpressure when the log fills.
//
// The tier is a performance model like the PFS underneath it: records carry
// offsets, sizes and checksums but no payload. Determinism follows from the
// simulation engine — the same configuration and seed drain in the same order
// at the same instants.
package burst

import (
	"fmt"

	"repro/internal/sim"
)

// CompressConfig models the drain pipeline's compression stage. Ratios are
// logical-bytes / wire-bytes (2.0 halves the drained volume); classes are
// application phase labels, so checkpoint data can compress differently from
// log records.
type CompressConfig struct {
	// Enabled turns the stage on. Off, wire bytes equal logical bytes and
	// no CPU cost is charged.
	Enabled bool

	// Ratio is the default compression ratio for classes without an entry
	// in ClassRatio. Values <= 1 drain uncompressed.
	Ratio float64

	// ClassRatio overrides Ratio per workload class (the phase label the
	// record was committed under, e.g. "checkpoint").
	ClassRatio map[string]float64

	// CPUBytesPerS is the compressor's throughput; each drained record
	// charges logical-bytes / CPUBytesPerS of daemon time.
	CPUBytesPerS float64
}

// Config parameterizes one burst tier instance.
type Config struct {
	// Enabled turns the tier on; a zero Config is off and the stack runs
	// exactly as without the tier.
	Enabled bool

	// CapacityBytes is each node's log capacity. Commits that would
	// overfill the log block until the drain daemon frees space; single
	// records larger than the whole log bypass straight to the PFS.
	CapacityBytes int64

	// CommitBWBytesPerS is the local commit bandwidth (memory or NVM
	// write speed); CommitOverhead is the fixed per-record commit cost.
	CommitBWBytesPerS float64
	CommitOverhead    sim.Time

	// DrainDelay is how long a newly woken drain daemon lingers before
	// flushing, modeling the daemon's wakeup latency (jittered by
	// JitterFrac from the per-node seeded stream).
	DrainDelay sim.Time

	// DrainBWBytesPerS caps the host-side drain injection rate; zero
	// drains as fast as the PFS accepts.
	DrainBWBytesPerS float64

	// VerifyBWBytesPerS is the checksum-verification scan rate the drain
	// daemon pays before handing a record to the PFS; zero skips the
	// charge (the verification itself always runs).
	VerifyBWBytesPerS float64

	// Compress is the drain pipeline's compression stage.
	Compress CompressConfig

	// Seed feeds the per-node jitter streams.
	Seed uint64

	// JitterFrac spreads DrainDelay by ±frac so the node daemons do not
	// wake in lockstep. Zero disables jitter (and draws nothing from the
	// RNG, keeping un-jittered runs on the legacy stream).
	JitterFrac float64

	// MaxDrainRetries bounds per-record drain attempts against a PFS that
	// keeps failing (an outage outlasting failover); an exhausted record
	// is dropped and counted in Stats.DrainFailures so the queue always
	// empties. RetryDelay is the pause between attempts.
	MaxDrainRetries int
	RetryDelay      sim.Time

	// Prefixes routes writes to files whose names start with any of these
	// prefixes through the log regardless of I/O mode (M_LOG traffic is
	// always intercepted). The resilience driver adds the checkpoint file
	// base automatically.
	Prefixes []string

	// PerNodeCapacity, when non-empty, gives compute node i the log
	// capacity PerNodeCapacity[i] — the heterogeneous-fleet shape, where
	// node templates carry different burst-log sizes. Entries <= 0 (and
	// nodes beyond the slice) fall back to CapacityBytes.
	PerNodeCapacity []int64
}

// DefaultConfig returns a 64 MB node log committing at 400 MB/s (conservative
// NVM-class write bandwidth) with 1.8x compression of checkpoint-class data.
func DefaultConfig() Config {
	return Config{
		Enabled:           true,
		CapacityBytes:     64 << 20,
		CommitBWBytesPerS: 400e6,
		CommitOverhead:    20 * sim.Microsecond,
		DrainDelay:        sim.Millisecond,
		VerifyBWBytesPerS: 2e9,
		Compress: CompressConfig{
			Enabled:      true,
			Ratio:        1.8,
			CPUBytesPerS: 500e6,
		},
		MaxDrainRetries: 64,
		RetryDelay:      250 * sim.Millisecond,
	}
}

// Normalized fills zero fields with defaults, leaving set fields alone.
func (c Config) Normalized() Config {
	d := DefaultConfig()
	if c.CapacityBytes == 0 {
		c.CapacityBytes = d.CapacityBytes
	}
	if c.CommitBWBytesPerS == 0 {
		c.CommitBWBytesPerS = d.CommitBWBytesPerS
	}
	if c.CommitOverhead == 0 {
		c.CommitOverhead = d.CommitOverhead
	}
	if c.DrainDelay == 0 {
		c.DrainDelay = d.DrainDelay
	}
	if c.VerifyBWBytesPerS == 0 {
		c.VerifyBWBytesPerS = d.VerifyBWBytesPerS
	}
	if c.MaxDrainRetries == 0 {
		c.MaxDrainRetries = d.MaxDrainRetries
	}
	if c.RetryDelay == 0 {
		c.RetryDelay = d.RetryDelay
	}
	if c.Compress.Enabled {
		if c.Compress.Ratio == 0 {
			c.Compress.Ratio = d.Compress.Ratio
		}
		if c.Compress.CPUBytesPerS == 0 {
			c.Compress.CPUBytesPerS = d.Compress.CPUBytesPerS
		}
	}
	return c
}

// Validate reports nonsensical configurations.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.CapacityBytes < 1 {
		return fmt.Errorf("burst: capacity %d bytes", c.CapacityBytes)
	}
	if c.CommitBWBytesPerS <= 0 {
		return fmt.Errorf("burst: commit bandwidth %g B/s", c.CommitBWBytesPerS)
	}
	if c.DrainBWBytesPerS < 0 || c.VerifyBWBytesPerS < 0 {
		return fmt.Errorf("burst: negative drain/verify bandwidth")
	}
	if c.Compress.Enabled && c.Compress.CPUBytesPerS <= 0 {
		return fmt.Errorf("burst: compression enabled with %g B/s CPU rate",
			c.Compress.CPUBytesPerS)
	}
	if c.JitterFrac < 0 || c.JitterFrac >= 1 {
		return fmt.Errorf("burst: jitter fraction %g", c.JitterFrac)
	}
	if c.MaxDrainRetries < 1 {
		return fmt.Errorf("burst: %d drain retries", c.MaxDrainRetries)
	}
	return nil
}

// ratioFor returns the compression ratio applied to a record of the given
// class, clamped to >= 1 (compression never inflates in this model).
func (c Config) ratioFor(class string) float64 {
	if !c.Compress.Enabled {
		return 1
	}
	r := c.Compress.Ratio
	if cr, ok := c.Compress.ClassRatio[class]; ok {
		r = cr
	}
	if r < 1 {
		return 1
	}
	return r
}

// wireBytes returns the drained (post-compression) size of a logical extent.
func (c Config) wireBytes(class string, logical int64) int64 {
	r := c.ratioFor(class)
	if r <= 1 {
		return logical
	}
	w := int64(float64(logical) / r)
	if w < 1 && logical > 0 {
		w = 1
	}
	return w
}
