package cache

// Pattern is an online per-stream access-pattern verdict. The thresholds
// mirror the offline classifier in internal/analysis/patterns.go (and the
// PPFS client classifier): a stream is sequential when at least 60% of its
// transitions continue exactly where the previous access ended, strided
// when at least 50% repeat a fixed non-sequential stride, random otherwise.
// Fewer than four accesses is too little evidence to act on.
type Pattern int

const (
	PatternUnknown Pattern = iota
	PatternSequential
	PatternStrided
	PatternRandom
)

func (p Pattern) String() string {
	switch p {
	case PatternSequential:
		return "sequential"
	case PatternStrided:
		return "strided"
	case PatternRandom:
		return "random"
	}
	return "unknown"
}

const (
	classifyMinAccesses = 4
	seqThreshold        = 0.6
	strideThreshold     = 0.5
)

// streamState is the classifier's per-stream memory.
type streamState struct {
	lastStart int64
	lastEnd   int64
	stride    int64
	accesses  int64
	seq       int64 // transitions continuing at lastEnd
	strided   int64 // non-sequential transitions repeating the stride
	seqRun    int64 // current consecutive sequential transitions
}

func (st *streamState) pattern() Pattern {
	if st.accesses < classifyMinAccesses {
		return PatternUnknown
	}
	trans := float64(st.accesses - 1)
	if float64(st.seq)/trans >= seqThreshold {
		return PatternSequential
	}
	if float64(st.strided)/trans >= strideThreshold {
		return PatternStrided
	}
	return PatternRandom
}

// classifier tracks every stream (file identity) seen by one cache.
type classifier struct {
	streams map[int64]*streamState
}

func newClassifier() *classifier {
	return &classifier{streams: make(map[int64]*streamState)}
}

// observe folds one access into the stream's state and returns it.
func (cl *classifier) observe(stream, addr, n int64) *streamState {
	st := cl.streams[stream]
	if st == nil {
		st = &streamState{}
		cl.streams[stream] = st
	}
	if st.accesses > 0 {
		switch {
		case addr == st.lastEnd:
			st.seq++
			st.seqRun++
		default:
			stride := addr - st.lastStart
			if stride == st.stride {
				st.strided++
			}
			st.stride = stride
			st.seqRun = 0
		}
	}
	st.accesses++
	st.lastStart = addr
	st.lastEnd = addr + n
	return st
}

// predict returns the block indices worth prefetching after an access at
// [addr, addr+n) on the given stream, most-confident first. Aggressiveness
// follows the verdict: a sequential stream ramps its readahead with the
// length of the current sequential run (up to depth), a strided stream
// fetches the blocks covering the one predicted next request, and random
// or unclassified streams fetch nothing.
func (cl *classifier) predict(st *streamState, n, blockBytes int64, depth int) []int64 {
	switch st.pattern() {
	case PatternSequential:
		d := int64(depth)
		if st.seqRun < d {
			d = st.seqRun
		}
		if d <= 0 {
			return nil
		}
		first := (st.lastEnd-1)/blockBytes + 1
		out := make([]int64, 0, d)
		for i := int64(0); i < d; i++ {
			out = append(out, first+i)
		}
		return out
	case PatternStrided:
		next := st.lastStart + st.stride
		if next < 0 {
			return nil
		}
		first := next / blockBytes
		last := (next + n - 1) / blockBytes
		out := make([]int64, 0, last-first+1)
		for idx := first; idx <= last; idx++ {
			out = append(out, idx)
		}
		return out
	}
	return nil
}

// counts tallies the per-stream verdicts (for Stats).
func (cl *classifier) counts() (seq, strided, random, unknown int64) {
	for _, st := range cl.streams {
		switch st.pattern() {
		case PatternSequential:
			seq++
		case PatternStrided:
			strided++
		case PatternRandom:
			random++
		default:
			unknown++
		}
	}
	return
}
