package cache

import "repro/internal/sim"

// Config describes one I/O node's block cache. The zero value disables
// caching entirely; DefaultConfig returns the enabled policy the cache
// sweeps and CLI flags use.
type Config struct {
	// Enabled turns the cache on. All other fields are ignored when false.
	Enabled bool

	// CapacityBytes bounds resident data; eviction is LRU. Default 8 MB,
	// matching the per-I/O-node buffer memory the paper's §8 remedies
	// assume (a small fraction of the node's 32 MB).
	CapacityBytes int64

	// BlockBytes is the cache block size. Blocks are fetched and flushed
	// whole and block-aligned, so a block fetch is one contiguous array
	// request. PFS sets this to its stripe unit when left zero.
	BlockBytes int64

	// HitOverhead is the I/O-node software cost charged per cache hit
	// (lookup plus buffer management); hits bypass the array queue.
	HitOverhead sim.Time

	// MemBWBytesPerS is the node memory bandwidth used to charge hit and
	// write-behind data movement.
	MemBWBytesPerS float64

	// WriteBehind installs dirty blocks and lets a flush daemon write them
	// back later (coalescing contiguous runs). When false, writes go
	// through synchronously and install clean.
	WriteBehind bool

	// FlushDelay is the write-behind daemon's pause between flush passes.
	FlushDelay sim.Time

	// Prefetch enables pattern-driven readahead: sequential streams ramp
	// up to PrefetchDepth blocks ahead, strided streams fetch the one
	// predicted next block, random streams fetch nothing.
	Prefetch      bool
	PrefetchDepth int

	// FlushOnFail selects the outage policy for dirty blocks: true drains
	// them synchronously to the array before the node goes down (graceful
	// handoff, charged to the failing instant); false loses them, counted
	// in Stats as lost-and-replayed (the PFS failover/replica path is the
	// application's recovery story).
	FlushOnFail bool
}

// DefaultConfig returns the enabled default policy: 8 MB capacity, 64 KB
// blocks, write-behind with a 50 ms flush delay, prefetch depth 4.
func DefaultConfig() Config {
	return Config{
		Enabled:        true,
		CapacityBytes:  8 << 20,
		BlockBytes:     64 << 10,
		HitOverhead:    200 * sim.Microsecond,
		MemBWBytesPerS: 200e6,
		WriteBehind:    true,
		FlushDelay:     50 * sim.Millisecond,
		Prefetch:       true,
		PrefetchDepth:  4,
	}
}

// Normalized fills zero fields with defaults; blockDefault overrides the
// default block size (PFS passes its stripe unit).
func (c Config) Normalized(blockDefault int64) Config {
	d := DefaultConfig()
	if c.CapacityBytes <= 0 {
		c.CapacityBytes = d.CapacityBytes
	}
	if c.BlockBytes <= 0 {
		if blockDefault > 0 {
			c.BlockBytes = blockDefault
		} else {
			c.BlockBytes = d.BlockBytes
		}
	}
	if c.HitOverhead <= 0 {
		c.HitOverhead = d.HitOverhead
	}
	if c.MemBWBytesPerS <= 0 {
		c.MemBWBytesPerS = d.MemBWBytesPerS
	}
	if c.FlushDelay <= 0 {
		c.FlushDelay = d.FlushDelay
	}
	if c.PrefetchDepth <= 0 {
		c.PrefetchDepth = d.PrefetchDepth
	}
	return c
}
