package cache

import (
	"fmt"
	"strings"
)

// maxLostRanges bounds the per-cache lost-range ledger.
const maxLostRanges = 64

// BlockRange is an inclusive run [Lo, Hi] of block indices.
type BlockRange struct {
	Lo, Hi int64
}

// String renders a single index as "12" and a run as "12-15".
func (r BlockRange) String() string {
	if r.Lo == r.Hi {
		return fmt.Sprintf("%d", r.Lo)
	}
	return fmt.Sprintf("%d-%d", r.Lo, r.Hi)
}

// FormatRanges renders lost block ranges for incident notes, e.g.
// "blocks 12-15, 40, 73-80".
func FormatRanges(rs []BlockRange) string {
	if len(rs) == 0 {
		return "none"
	}
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.String()
	}
	return strings.Join(parts, ", ")
}

// Stats are one cache's accumulated counters. Aggregate sums them across
// nodes; Node is the owning I/O node (-1 for an aggregate).
type Stats struct {
	Node int

	// Demand read traffic, counted per block touched.
	Hits      int64 // block resident on arrival
	Misses    int64 // block fetched from the array on demand
	HitBytes  int64 // request bytes served from resident blocks
	MissBytes int64 // request bytes that waited for an array fetch
	Fetches   int64 // demand fetch I/Os issued (coalesced miss runs)

	// Write-behind traffic.
	DirtyInstalls int64 // blocks dirtied by write-behind installs
	WriteBytes    int64 // request bytes absorbed by write-behind
	WriteThrough  int64 // blocks written synchronously (WriteBehind off)
	Flushes       int64 // flush I/Os issued (each a coalesced dirty run)
	FlushedBlocks int64 // dirty blocks written back
	FlushedBytes  int64

	// Eviction.
	Evictions      int64 // blocks evicted for capacity
	DirtyEvictions int64 // evictions that forced a synchronous flush

	// Prefetch.
	PrefetchIssued  int64 // blocks queued for readahead
	PrefetchUsed    int64 // prefetched blocks later hit by demand reads
	DelayedHits     int64 // demand reads that waited on an in-flight fetch
	PrefetchWasted  int64 // prefetched blocks evicted unused
	PrefetchAborted int64 // in-flight fetches abandoned (node down, error)

	// Fault interaction.
	LostDirtyBlocks   int64 // dirty blocks discarded by an outage
	LostDirtyBytes    int64
	OutageDrains      int64        // graceful FlushOnFail drains performed
	LostRanges        []BlockRange // which block runs were lost, in order
	LostRangesDropped int64        // ranges beyond the maxLostRanges cap

	// Integrity interaction.
	CorruptFetches   int64 // fetches rejected by checksum verification
	CorruptRefetches int64 // rejected fetches that succeeded on re-fetch

	// Stream classification at last report (per-stream verdicts).
	SeqStreams     int64
	StridedStreams int64
	RandomStreams  int64
	UnknownStreams int64
}

// HitRatio is the fraction of demand block touches served from the cache.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// PrefetchAccuracy is the fraction of completed prefetches that were used
// before eviction.
func (s Stats) PrefetchAccuracy() float64 {
	if s.PrefetchUsed+s.PrefetchWasted == 0 {
		return 0
	}
	return float64(s.PrefetchUsed) / float64(s.PrefetchUsed+s.PrefetchWasted)
}

// Coalescing is the mean number of dirty blocks written back per flush I/O
// — the write-behind coalescing factor.
func (s Stats) Coalescing() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.FlushedBlocks) / float64(s.Flushes)
}

// Aggregate sums per-node stats into one report row with Node = -1.
func Aggregate(per []Stats) Stats {
	t := Stats{Node: -1}
	for _, s := range per {
		t.Hits += s.Hits
		t.Misses += s.Misses
		t.HitBytes += s.HitBytes
		t.MissBytes += s.MissBytes
		t.Fetches += s.Fetches
		t.DirtyInstalls += s.DirtyInstalls
		t.WriteBytes += s.WriteBytes
		t.WriteThrough += s.WriteThrough
		t.Flushes += s.Flushes
		t.FlushedBlocks += s.FlushedBlocks
		t.FlushedBytes += s.FlushedBytes
		t.Evictions += s.Evictions
		t.DirtyEvictions += s.DirtyEvictions
		t.PrefetchIssued += s.PrefetchIssued
		t.PrefetchUsed += s.PrefetchUsed
		t.DelayedHits += s.DelayedHits
		t.PrefetchWasted += s.PrefetchWasted
		t.PrefetchAborted += s.PrefetchAborted
		t.LostDirtyBlocks += s.LostDirtyBlocks
		t.LostDirtyBytes += s.LostDirtyBytes
		t.OutageDrains += s.OutageDrains
		for _, r := range s.LostRanges {
			if len(t.LostRanges) >= maxLostRanges {
				t.LostRangesDropped++
				continue
			}
			t.LostRanges = append(t.LostRanges, r)
		}
		t.LostRangesDropped += s.LostRangesDropped
		t.CorruptFetches += s.CorruptFetches
		t.CorruptRefetches += s.CorruptRefetches
		t.SeqStreams += s.SeqStreams
		t.StridedStreams += s.StridedStreams
		t.RandomStreams += s.RandomStreams
		t.UnknownStreams += s.UnknownStreams
	}
	return t
}
