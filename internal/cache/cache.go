// Package cache models a per-I/O-node block cache with LRU eviction,
// write-behind (dirty blocks flushed by a daemon that coalesces contiguous
// runs), and pattern-driven prefetch — the §8 remedies the paper argues the
// measured access patterns call for (caching, prefetching, write-behind
// matched to sequential/interleaved small requests).
//
// The cache sits between the I/O node's request queue and its RAID-3 array:
// hits are served from node memory without touching the array queue, misses
// fetch whole blocks (coalescing adjacent missing blocks into one array
// request), and write-behind absorbs writes at memory speed while a flush
// daemon writes dirty runs back in block order. Like the rest of the
// simulation it is a performance model: blocks carry no payload, only
// residency, dirtiness and stream identity.
//
// Determinism: every externally visible action happens in an order that is a
// pure function of the simulation state. Flushes and outage handling iterate
// blocks in ascending block-index order (never map order), so two runs with
// the same seed produce bit-identical traces.
//
// Fault interaction: when the owning I/O node fails, dirty blocks are either
// synchronously drained to the array first (Config.FlushOnFail, the graceful
// handoff) or discarded and counted as lost — the application's recovery is
// the PFS failover/replica path, which re-reads or re-writes the data. All
// in-flight fetches are aborted so no reader waits on a dead node forever.
package cache

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/integrity"
	"repro/internal/sim"
)

// Backend is the array-side interface the cache fetches and flushes
// through. An I/O node implements it with its queue + RAID service path.
type Backend interface {
	// BlockIO performs one contiguous transfer against the backing array,
	// charging queueing and service time to p.
	BlockIO(p *sim.Process, stream, addr, bytes int64, read bool) error
}

// block is one resident cache block. Blocks are keyed by block index
// (array address / BlockBytes); the synthetic array address space already
// makes indices unique per file.
type block struct {
	idx        int64
	stream     int64
	dirty      bool
	prefetched bool // fetched by readahead and not yet touched by demand
	prev, next *block
}

// pfReq is one queued prefetch.
type pfReq struct {
	stream int64
	idx    int64
}

// Cache is one I/O node's block cache.
type Cache struct {
	eng  *sim.Engine
	name string
	cfg  Config
	be   Backend

	capBlocks int64
	blocks    map[int64]*block
	head      *block // most recently used
	tail      *block // least recently used

	cls     *classifier
	pending map[int64]*sim.Completion // in-flight fetches, by block index
	pfQueue []pfReq
	pfLive  bool
	flLive  bool
	down    bool

	s Stats
}

// New creates a cache in front of backend be. The config is normalized
// (zero fields take defaults).
func New(eng *sim.Engine, name string, cfg Config, be Backend) *Cache {
	cfg = cfg.Normalized(0)
	capBlocks := cfg.CapacityBytes / cfg.BlockBytes
	if capBlocks < 1 {
		capBlocks = 1
	}
	return &Cache{
		eng:       eng,
		name:      name,
		cfg:       cfg,
		be:        be,
		capBlocks: capBlocks,
		blocks:    make(map[int64]*block),
		cls:       newClassifier(),
		pending:   make(map[int64]*sim.Completion),
	}
}

// Config returns the normalized configuration.
func (c *Cache) Config() Config { return c.cfg }

// Len returns the number of resident blocks.
func (c *Cache) Len() int { return len(c.blocks) }

// DirtyLen returns the number of resident dirty blocks.
func (c *Cache) DirtyLen() int {
	n := 0
	for _, b := range c.blocks {
		if b.dirty {
			n++
		}
	}
	return n
}

// Stats returns the accumulated counters plus the classifier's current
// per-stream verdicts.
func (c *Cache) Stats() Stats {
	s := c.s
	s.SeqStreams, s.StridedStreams, s.RandomStreams, s.UnknownStreams = c.cls.counts()
	return s
}

// memTime charges node memory bandwidth for moving bytes to/from the cache.
func (c *Cache) memTime(bytes int64) sim.Time {
	return sim.Time(float64(bytes) / c.cfg.MemBWBytesPerS * float64(sim.Second))
}

// overlap returns how many bytes of request [addr, addr+n) fall in block idx.
func (c *Cache) overlap(idx, addr, n int64) int64 {
	bs := c.cfg.BlockBytes
	lo, hi := idx*bs, (idx+1)*bs
	if addr > lo {
		lo = addr
	}
	if addr+n < hi {
		hi = addr + n
	}
	return hi - lo
}

// Read serves a demand read of [addr, addr+n) on stream: resident blocks are
// hits charged at memory speed, blocks with a fetch in flight are awaited,
// and runs of absent blocks are fetched whole and block-aligned in one
// coalesced array request each. A backend error (node died mid-run) aborts
// the remainder and propagates to the PFS failover path.
func (c *Cache) Read(p *sim.Process, stream, addr, n int64) error {
	if n <= 0 {
		return nil
	}
	bs := c.cfg.BlockBytes
	last := (addr + n - 1) / bs
	idx := addr / bs
	for idx <= last {
		if b := c.blocks[idx]; b != nil {
			c.hit(p, b, c.overlap(idx, addr, n))
			idx++
			continue
		}
		if comp := c.pending[idx]; comp != nil {
			// An identical fetch is in flight (prefetch or a collapsed
			// concurrent demand miss): wait for it, then re-examine.
			c.s.DelayedHits++
			comp.Await(p)
			continue
		}
		var err error
		if idx, err = c.fetchRun(p, stream, idx, last, addr, n); err != nil {
			return err
		}
	}
	c.observe(p, stream, addr, n, true)
	return nil
}

// fetchRun fetches the maximal run of absent blocks starting at idx (bounded
// by last) in one array request, installs them, and returns the next block
// index to examine.
func (c *Cache) fetchRun(p *sim.Process, stream, idx, last, addr, n int64) (int64, error) {
	bs := c.cfg.BlockBytes
	runEnd := idx
	for runEnd < last && c.blocks[runEnd+1] == nil && c.pending[runEnd+1] == nil {
		runEnd++
	}
	comp := sim.NewCompletion(fmt.Sprintf("%s-fetch@%d", c.name, idx))
	for j := idx; j <= runEnd; j++ {
		c.pending[j] = comp
	}
	err := c.be.BlockIO(p, stream, idx*bs, (runEnd-idx+1)*bs, true)
	if err != nil && errors.Is(err, integrity.ErrCorrupt) && c.pending[idx] == comp {
		// The node's checksum verification rejected the fetch and could not
		// repair it in place. Never install the run (no poison in the cache);
		// re-fetch once — an intervening write or repair may have cleared it —
		// and otherwise propagate so the PFS retry path can reroute to a
		// replica.
		c.s.CorruptFetches++
		err = c.be.BlockIO(p, stream, idx*bs, (runEnd-idx+1)*bs, true)
		if err == nil {
			c.s.CorruptRefetches++
		}
	}
	owner := c.pending[idx] == comp // false if an outage already aborted us
	if owner {
		for j := idx; j <= runEnd; j++ {
			delete(c.pending, j)
		}
	}
	if err != nil {
		if owner {
			comp.Complete(p)
		}
		return idx, err
	}
	c.s.Fetches++
	for j := idx; j <= runEnd; j++ {
		c.s.Misses++
		c.s.MissBytes += c.overlap(j, addr, n)
		c.installBlock(p, stream, j, false, false)
	}
	if owner {
		comp.Complete(p)
	}
	return runEnd + 1, nil
}

// Write absorbs a write of [addr, addr+n) on stream. With write-behind the
// touched blocks are installed dirty at memory speed and the flush daemon
// writes them back later; otherwise the range is written through
// synchronously and installed clean.
func (c *Cache) Write(p *sim.Process, stream, addr, n int64) error {
	if n <= 0 {
		return nil
	}
	bs := c.cfg.BlockBytes
	first, last := addr/bs, (addr+n-1)/bs
	if !c.cfg.WriteBehind {
		if err := c.be.BlockIO(p, stream, addr, n, false); err != nil {
			return err
		}
		for idx := first; idx <= last; idx++ {
			c.s.WriteThrough++
			c.installBlock(p, stream, idx, false, false)
		}
		c.observe(p, stream, addr, n, false)
		return nil
	}
	p.Sleep(c.cfg.HitOverhead + c.memTime(n))
	for idx := first; idx <= last; idx++ {
		if b := c.blocks[idx]; b != nil {
			if !b.dirty {
				b.dirty = true
				c.s.DirtyInstalls++
			}
			b.stream = stream
			b.prefetched = false
			c.moveFront(b)
			continue
		}
		c.s.DirtyInstalls++
		c.installBlock(p, stream, idx, true, false)
	}
	c.s.WriteBytes += n
	c.observe(p, stream, addr, n, false)
	c.ensureFlusher()
	return nil
}

// Drain synchronously flushes the stream's dirty blocks (Handle.Flush /
// FORFLUSH). On a down node there is nothing left to write — the outage
// already disposed of dirty state per policy.
func (c *Cache) Drain(p *sim.Process, stream int64) error {
	if c.down {
		return nil
	}
	return c.flushDirty(p, stream, true)
}

// OnFail is the owning node's outage hook, called while the node can still
// service requests. Per policy it drains or discards dirty blocks, then
// aborts every in-flight fetch so no waiter parks forever on a dead node.
func (c *Cache) OnFail(p *sim.Process) {
	if c.down {
		return
	}
	if c.cfg.FlushOnFail && c.anyDirty() {
		c.s.OutageDrains++
		_ = c.flushDirty(p, 0, false)
	}
	c.down = true
	c.discardDirty()

	idxs := make([]int64, 0, len(c.pending))
	for idx := range c.pending {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	fired := make(map[*sim.Completion]bool)
	for _, idx := range idxs {
		comp := c.pending[idx]
		delete(c.pending, idx)
		if !fired[comp] {
			fired[comp] = true
			c.s.PrefetchAborted++
			comp.Complete(p)
		}
	}
	c.pfQueue = nil
}

// OnRestore is the owning node's repair hook. Clean resident blocks remain
// valid; write-behind and prefetch resume on demand.
func (c *Cache) OnRestore(p *sim.Process) { c.down = false }

// hit serves segBytes of a request from resident block b.
func (c *Cache) hit(p *sim.Process, b *block, segBytes int64) {
	c.s.Hits++
	c.s.HitBytes += segBytes
	if b.prefetched {
		b.prefetched = false
		c.s.PrefetchUsed++
	}
	c.moveFront(b)
	p.Sleep(c.cfg.HitOverhead + c.memTime(segBytes))
}

// installBlock makes room and inserts a block, tolerating a concurrent
// install of the same index during the eviction flush's simulated time.
func (c *Cache) installBlock(p *sim.Process, stream, idx int64, dirty, prefetched bool) {
	if b := c.blocks[idx]; b != nil {
		if dirty && !b.dirty {
			b.dirty = true
		}
		c.moveFront(b)
		return
	}
	c.ensureRoom(p)
	b := &block{idx: idx, stream: stream, dirty: dirty, prefetched: prefetched}
	c.blocks[idx] = b
	c.pushFront(b)
}

// ensureRoom evicts LRU blocks until a new one fits. A dirty victim forces a
// synchronous flush of the contiguous dirty run containing it (ascending
// block order — the deterministic flush ordering guarantee).
func (c *Cache) ensureRoom(p *sim.Process) {
	for int64(len(c.blocks)) >= c.capBlocks {
		v := c.tail
		if v == nil {
			return
		}
		c.remove(v)
		c.s.Evictions++
		if v.prefetched {
			c.s.PrefetchWasted++
		}
		if v.dirty {
			c.s.DirtyEvictions++
			c.flushAround(p, v)
		}
	}
}

// flushAround writes back the evicted dirty block v together with the
// contiguous dirty same-stream run still resident around it, as one array
// write in ascending block order.
func (c *Cache) flushAround(p *sim.Process, v *block) {
	lo, hi := v.idx, v.idx
	for {
		b := c.blocks[lo-1]
		if b == nil || !b.dirty || b.stream != v.stream {
			break
		}
		lo--
	}
	for {
		b := c.blocks[hi+1]
		if b == nil || !b.dirty || b.stream != v.stream {
			break
		}
		hi++
	}
	for i := lo; i <= hi; i++ {
		if b := c.blocks[i]; b != nil {
			b.dirty = false
		}
	}
	_ = c.writeRun(p, v.stream, lo, hi)
}

// flushDirty writes back dirty blocks — all of them, or one stream's — as
// coalesced contiguous runs in ascending block order, rescanning after each
// write so blocks dirtied during a flush are picked up. A backend error
// (node down) stops the pass; the failed run is counted lost.
func (c *Cache) flushDirty(p *sim.Process, stream int64, filtered bool) error {
	for {
		lo, ok := c.firstDirty(stream, filtered)
		if !ok {
			return nil
		}
		s := c.blocks[lo].stream
		hi := lo
		for {
			b := c.blocks[hi+1]
			if b == nil || !b.dirty || b.stream != s {
				break
			}
			hi++
		}
		for i := lo; i <= hi; i++ {
			c.blocks[i].dirty = false
		}
		if err := c.writeRun(p, s, lo, hi); err != nil {
			return err
		}
	}
}

// firstDirty returns the smallest dirty block index (optionally restricted
// to one stream). Map iteration order does not matter: the minimum is
// order-independent.
func (c *Cache) firstDirty(stream int64, filtered bool) (int64, bool) {
	var best int64
	found := false
	for idx, b := range c.blocks {
		if !b.dirty || (filtered && b.stream != stream) {
			continue
		}
		if !found || idx < best {
			best, found = idx, true
		}
	}
	return best, found
}

func (c *Cache) anyDirty() bool {
	for _, b := range c.blocks {
		if b.dirty {
			return true
		}
	}
	return false
}

// writeRun writes blocks [lo, hi] (already marked clean) back as one array
// request; on failure they are counted lost (the node died under us).
func (c *Cache) writeRun(p *sim.Process, stream, lo, hi int64) error {
	bs := c.cfg.BlockBytes
	nb := hi - lo + 1
	if err := c.be.BlockIO(p, stream, lo*bs, nb*bs, false); err != nil {
		c.s.LostDirtyBlocks += nb
		c.s.LostDirtyBytes += nb * bs
		c.recordLost(lo, hi)
		return err
	}
	c.s.Flushes++
	c.s.FlushedBlocks += nb
	c.s.FlushedBytes += nb * bs
	return nil
}

// discardDirty drops all dirty blocks (outage without FlushOnFail), in
// ascending block order, counting them lost.
func (c *Cache) discardDirty() {
	var idxs []int64
	for idx, b := range c.blocks {
		if b.dirty {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for i := 0; i < len(idxs); {
		j := i
		for j+1 < len(idxs) && idxs[j+1] == idxs[j]+1 {
			j++
		}
		c.recordLost(idxs[i], idxs[j])
		i = j + 1
	}
	for _, idx := range idxs {
		b := c.blocks[idx]
		c.remove(b)
		c.s.LostDirtyBlocks++
		c.s.LostDirtyBytes += c.cfg.BlockBytes
	}
}

// recordLost notes a lost dirty block range [lo, hi] for the incident
// timeline, bounded so a pathological outage cannot bloat the stats.
func (c *Cache) recordLost(lo, hi int64) {
	if len(c.s.LostRanges) >= maxLostRanges {
		c.s.LostRangesDropped++
		return
	}
	c.s.LostRanges = append(c.s.LostRanges, BlockRange{Lo: lo, Hi: hi})
}

// ensureFlusher spawns the write-behind daemon if dirty blocks exist and it
// is not already running. The daemon exits when the cache is clean (or the
// node goes down), so an idle simulation never holds a parked process — the
// engine's drain-time deadlock check stays meaningful.
func (c *Cache) ensureFlusher() {
	if c.flLive || c.down || !c.cfg.WriteBehind {
		return
	}
	c.flLive = true
	c.eng.Spawn(c.name+"-flush", func(p *sim.Process) {
		defer func() { c.flLive = false }()
		for {
			p.Sleep(c.cfg.FlushDelay)
			if c.down {
				return
			}
			if err := c.flushDirty(p, 0, false); err != nil {
				return
			}
			if !c.anyDirty() {
				return
			}
		}
	})
}

// observe feeds the classifier and, on reads, queues the predicted blocks
// for the prefetch daemon.
func (c *Cache) observe(p *sim.Process, stream, addr, n int64, read bool) {
	st := c.cls.observe(stream, addr, n)
	if !read || !c.cfg.Prefetch || c.down {
		return
	}
	for _, idx := range c.cls.predict(st, n, c.cfg.BlockBytes, c.cfg.PrefetchDepth) {
		if idx < 0 || c.blocks[idx] != nil || c.pending[idx] != nil {
			continue
		}
		c.pending[idx] = sim.NewCompletion(fmt.Sprintf("%s-pf@%d", c.name, idx))
		c.pfQueue = append(c.pfQueue, pfReq{stream: stream, idx: idx})
		c.s.PrefetchIssued++
	}
	c.ensurePrefetcher()
}

// ensurePrefetcher spawns the readahead daemon if work is queued. Like the
// flusher it is spawn-on-demand and exits when its queue drains.
func (c *Cache) ensurePrefetcher() {
	if c.pfLive || len(c.pfQueue) == 0 {
		return
	}
	c.pfLive = true
	c.eng.Spawn(c.name+"-prefetch", func(p *sim.Process) {
		defer func() { c.pfLive = false }()
		for len(c.pfQueue) > 0 {
			req := c.pfQueue[0]
			c.pfQueue = c.pfQueue[1:]
			comp := c.pending[req.idx]
			if comp == nil {
				continue // aborted by an outage
			}
			if c.blocks[req.idx] != nil {
				// Demand traffic brought the block in first.
				delete(c.pending, req.idx)
				comp.Complete(p)
				continue
			}
			err := c.be.BlockIO(p, req.stream, req.idx*c.cfg.BlockBytes, c.cfg.BlockBytes, true)
			if c.pending[req.idx] != comp {
				continue // an outage fired the completion while we slept
			}
			delete(c.pending, req.idx)
			if err != nil {
				if errors.Is(err, integrity.ErrCorrupt) {
					c.s.CorruptFetches++
				}
				c.s.PrefetchAborted++
				comp.Complete(p)
				continue
			}
			c.installBlock(p, req.stream, req.idx, false, true)
			comp.Complete(p)
		}
	})
}

// LRU list management; head is most recently used.

func (c *Cache) pushFront(b *block) {
	b.prev, b.next = nil, c.head
	if c.head != nil {
		c.head.prev = b
	}
	c.head = b
	if c.tail == nil {
		c.tail = b
	}
}

func (c *Cache) remove(b *block) {
	delete(c.blocks, b.idx)
	c.unlink(b)
}

func (c *Cache) unlink(b *block) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		c.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		c.tail = b.prev
	}
	b.prev, b.next = nil, nil
}

func (c *Cache) moveFront(b *block) {
	if c.head == b {
		return
	}
	c.unlink(b)
	c.pushFront(b)
}
