package cache

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

const bs = 4096 // test block size

var errDown = errors.New("backend down")

// fakeBackend records every array-level transfer and charges a fixed cost.
type fakeBackend struct {
	cost sim.Time
	down bool
	log  []string
}

func (f *fakeBackend) BlockIO(p *sim.Process, stream, addr, bytes int64, read bool) error {
	if f.down {
		return errDown
	}
	op := "w"
	if read {
		op = "r"
	}
	f.log = append(f.log, fmt.Sprintf("%s s%d a%d n%d", op, stream, addr, bytes))
	p.Sleep(f.cost)
	return nil
}

func testConfig() Config {
	return Config{
		Enabled:       true,
		CapacityBytes: 4 * bs,
		BlockBytes:    bs,
		WriteBehind:   true,
		FlushDelay:    10 * sim.Millisecond,
		Prefetch:      true,
		PrefetchDepth: 4,
	}
}

func newTest(cfg Config) (*sim.Engine, *fakeBackend, *Cache) {
	eng := sim.NewEngine()
	be := &fakeBackend{cost: 5 * sim.Millisecond}
	return eng, be, New(eng, "test", cfg, be)
}

func TestReadMissFetchesWholeBlockThenHits(t *testing.T) {
	eng, be, c := newTest(testConfig())
	eng.Spawn("r", func(p *sim.Process) {
		if err := c.Read(p, 1, 0, 2048); err != nil {
			t.Error(err)
		}
		if err := c.Read(p, 1, 2048, 2048); err != nil {
			t.Error(err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(be.log) != 1 || be.log[0] != fmt.Sprintf("r s1 a0 n%d", bs) {
		t.Fatalf("backend log %v, want one whole-block fetch", be.log)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 || s.Fetches != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.MissBytes != 2048 || s.HitBytes != 2048 {
		t.Fatalf("byte accounting %+v", s)
	}
}

func TestMissRunCoalescesIntoOneFetch(t *testing.T) {
	cfg := testConfig()
	cfg.CapacityBytes = 16 * bs
	eng, be, c := newTest(cfg)
	eng.Spawn("r", func(p *sim.Process) {
		if err := c.Read(p, 1, 0, 4*bs); err != nil {
			t.Error(err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(be.log) != 1 || be.log[0] != fmt.Sprintf("r s1 a0 n%d", 4*bs) {
		t.Fatalf("backend log %v, want one 4-block fetch", be.log)
	}
	if s := c.Stats(); s.Misses != 4 || s.Fetches != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestSequentialStreamPrefetches(t *testing.T) {
	cfg := testConfig()
	cfg.CapacityBytes = 64 * bs
	eng, _, c := newTest(cfg)
	eng.Spawn("r", func(p *sim.Process) {
		for off := int64(0); off < 32*bs; off += 1024 {
			if err := c.Read(p, 1, off, 1024); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.PrefetchIssued == 0 || s.PrefetchUsed == 0 {
		t.Fatalf("no prefetch activity: %+v", s)
	}
	if s.PrefetchAccuracy() < 0.9 {
		t.Fatalf("sequential prefetch accuracy %.2f, want >= 0.9", s.PrefetchAccuracy())
	}
	if s.SeqStreams != 1 {
		t.Fatalf("stream verdicts %+v", s)
	}
}

func TestRandomStreamDoesNotPrefetch(t *testing.T) {
	cfg := testConfig()
	cfg.CapacityBytes = 8 * bs
	eng, _, c := newTest(cfg)
	rng := sim.NewRNG(7)
	eng.Spawn("r", func(p *sim.Process) {
		for i := 0; i < 64; i++ {
			off := rng.Int63n(1024) * bs
			if err := c.Read(p, 1, off, bs); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.PrefetchIssued != 0 {
		t.Fatalf("random stream prefetched %d blocks", s.PrefetchIssued)
	}
	if s.RandomStreams != 1 {
		t.Fatalf("stream verdicts %+v", s)
	}
}

func TestWriteBehindAbsorbsAndFlushesCoalesced(t *testing.T) {
	cfg := testConfig()
	cfg.CapacityBytes = 16 * bs
	eng, be, c := newTest(cfg)
	var writeTime sim.Time
	eng.Spawn("w", func(p *sim.Process) {
		start := p.Now()
		for off := int64(0); off < 4*bs; off += 1024 {
			if err := c.Write(p, 1, off, 1024); err != nil {
				t.Error(err)
				return
			}
		}
		writeTime = p.Now() - start
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if writeTime >= be.cost {
		t.Fatalf("write-behind writes took %v, want memory-speed", writeTime)
	}
	// All four dirty blocks coalesced into one flush I/O.
	var writes []string
	for _, l := range be.log {
		if strings.HasPrefix(l, "w") {
			writes = append(writes, l)
		}
	}
	if len(writes) != 1 || writes[0] != fmt.Sprintf("w s1 a0 n%d", 4*bs) {
		t.Fatalf("flush writes %v, want one coalesced run", writes)
	}
	s := c.Stats()
	if s.Flushes != 1 || s.FlushedBlocks != 4 {
		t.Fatalf("flush stats %+v", s)
	}
	if s.Coalescing() != 4 {
		t.Fatalf("coalescing %.1f, want 4.0", s.Coalescing())
	}
	if c.DirtyLen() != 0 {
		t.Fatalf("%d dirty blocks left after flush", c.DirtyLen())
	}
}

func TestDirtyEvictionFlushesContiguousRunAscending(t *testing.T) {
	cfg := testConfig()       // capacity 4 blocks
	cfg.FlushDelay = sim.Hour // keep the daemon out of the way
	eng, be, c := newTest(cfg)
	eng.Spawn("w", func(p *sim.Process) {
		for i := int64(0); i < 5; i++ { // fifth write evicts block 0
			if err := c.Write(p, 1, i*bs, bs); err != nil {
				t.Error(err)
				return
			}
		}
		// Drain the rest so the eternal flush daemon exits cleanly.
		if err := c.Drain(p, 1); err != nil {
			t.Error(err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.DirtyEvictions != 1 {
		t.Fatalf("stats %+v, want one dirty eviction", s)
	}
	// The eviction flush covers the whole contiguous dirty run 0..3 in one
	// ascending write.
	if be.log[0] != fmt.Sprintf("w s1 a0 n%d", 4*bs) {
		t.Fatalf("eviction flush %v", be.log)
	}
}

func TestOutageDiscardsDirtyAndCountsLost(t *testing.T) {
	cfg := testConfig()
	cfg.FlushDelay = sim.Hour
	eng, be, c := newTest(cfg)
	eng.Spawn("w", func(p *sim.Process) {
		for i := int64(0); i < 3; i++ {
			if err := c.Write(p, 1, i*bs, bs); err != nil {
				t.Error(err)
				return
			}
		}
		be.down = true
		c.OnFail(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.LostDirtyBlocks != 3 || s.LostDirtyBytes != 3*bs {
		t.Fatalf("lost accounting %+v", s)
	}
	if s.Flushes != 0 {
		t.Fatalf("crash policy flushed: %+v", s)
	}
	if c.DirtyLen() != 0 {
		t.Fatal("dirty blocks survived the outage")
	}
}

func TestFlushOnFailDrainsBeforeOutage(t *testing.T) {
	cfg := testConfig()
	cfg.FlushDelay = sim.Hour
	cfg.FlushOnFail = true
	eng, be, c := newTest(cfg)
	eng.Spawn("w", func(p *sim.Process) {
		for i := int64(0); i < 3; i++ {
			if err := c.Write(p, 1, i*bs, bs); err != nil {
				t.Error(err)
				return
			}
		}
		c.OnFail(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.OutageDrains != 1 || s.FlushedBlocks != 3 || s.LostDirtyBlocks != 0 {
		t.Fatalf("graceful drain stats %+v", s)
	}
	if be.log[len(be.log)-1] != fmt.Sprintf("w s1 a0 n%d", 3*bs) {
		t.Fatalf("drain writes %v", be.log)
	}
}

func TestOutageAbortsInFlightFetchesWithoutDeadlock(t *testing.T) {
	cfg := testConfig()
	cfg.CapacityBytes = 64 * bs
	eng, be, c := newTest(cfg)
	var readErr error
	eng.Spawn("reader", func(p *sim.Process) {
		// Warm the classifier sequential so prefetches get queued.
		for off := int64(0); off < 6*bs; off += bs {
			if err := c.Read(p, 1, off, bs); err != nil {
				readErr = err
				return
			}
		}
	})
	eng.SpawnAt("injector", 12*sim.Millisecond, func(p *sim.Process) {
		be.down = true
		c.OnFail(p)
	})
	// Run must terminate: every pending completion fired, daemons exited.
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if readErr == nil {
		t.Fatal("reader survived the outage unscathed")
	}
	if len(c.pending) != 0 || len(c.pfQueue) != 0 {
		t.Fatalf("outage left %d pending, %d queued", len(c.pending), len(c.pfQueue))
	}
}

func TestWriteThroughInstallsClean(t *testing.T) {
	cfg := testConfig()
	cfg.WriteBehind = false
	eng, be, c := newTest(cfg)
	eng.Spawn("w", func(p *sim.Process) {
		if err := c.Write(p, 1, 0, 2*bs); err != nil {
			t.Error(err)
		}
		if err := c.Read(p, 1, 0, bs); err != nil {
			t.Error(err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(be.log) != 1 || be.log[0] != fmt.Sprintf("w s1 a0 n%d", 2*bs) {
		t.Fatalf("backend log %v, want one synchronous write", be.log)
	}
	s := c.Stats()
	if s.WriteThrough != 2 || s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("stats %+v", s)
	}
	if c.DirtyLen() != 0 {
		t.Fatal("write-through left dirty blocks")
	}
}

func TestConcurrentMissesCollapseIntoOneFetch(t *testing.T) {
	cfg := testConfig()
	eng, be, c := newTest(cfg)
	for i := 0; i < 3; i++ {
		eng.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Process) {
			if err := c.Read(p, 1, 0, bs); err != nil {
				t.Error(err)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(be.log) != 1 {
		t.Fatalf("backend log %v, want the misses collapsed into one fetch", be.log)
	}
	s := c.Stats()
	if s.DelayedHits != 2 || s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

// runDeterminismScenario drives several concurrent writers under capacity
// pressure (forcing concurrent dirty evictions) and returns the backend's
// full transfer log plus the final stats.
func runDeterminismScenario(t *testing.T) ([]string, Stats) {
	t.Helper()
	cfg := testConfig() // 4-block capacity: heavy eviction traffic
	eng, be, c := newTest(cfg)
	for w := 0; w < 4; w++ {
		w := w
		eng.Spawn(fmt.Sprintf("w%d", w), func(p *sim.Process) {
			stream := int64(w + 1)
			base := int64(w) << 20
			for i := int64(0); i < 12; i++ {
				if err := c.Write(p, stream, base+i*bs, bs); err != nil {
					t.Error(err)
					return
				}
				p.Sleep(sim.Millisecond)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return be.log, c.Stats()
}

func TestFlushOrderingDeterministicUnderConcurrentEvictions(t *testing.T) {
	log1, s1 := runDeterminismScenario(t)
	log2, s2 := runDeterminismScenario(t)
	if len(log1) == 0 {
		t.Fatal("scenario produced no backend traffic")
	}
	if strings.Join(log1, "\n") != strings.Join(log2, "\n") {
		t.Fatalf("two identical runs diverged:\n%v\nvs\n%v", log1, log2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
}

func TestAggregateSums(t *testing.T) {
	a := Stats{Node: 0, Hits: 3, Misses: 1, Flushes: 2, FlushedBlocks: 6}
	b := Stats{Node: 1, Hits: 1, Misses: 1, PrefetchIssued: 5}
	tot := Aggregate([]Stats{a, b})
	if tot.Node != -1 || tot.Hits != 4 || tot.Misses != 2 || tot.Flushes != 2 ||
		tot.FlushedBlocks != 6 || tot.PrefetchIssued != 5 {
		t.Fatalf("aggregate %+v", tot)
	}
	if tot.HitRatio() != 4.0/6.0 {
		t.Fatalf("hit ratio %f", tot.HitRatio())
	}
	if tot.Coalescing() != 3 {
		t.Fatalf("coalescing %f", tot.Coalescing())
	}
}
