package cache

import (
	"testing"
)

// decodeAccesses turns a fuzz byte string into a bounded access trace:
// 3 bytes per access — stream selector, kilobyte-granular address, and a
// 1–4 KB length. Small alphabets keep sequential and strided continuations
// (addr == lastEnd, repeated deltas) reachable by the fuzzer's mutations.
func decodeAccesses(data []byte) (stream, addr, n []int64) {
	for i := 0; i+2 < len(data); i += 3 {
		stream = append(stream, int64(data[i]%4))
		addr = append(addr, int64(data[i+1])*1024)
		n = append(n, int64(data[i+2]%4+1)*1024)
	}
	return
}

// FuzzClassifier drives the online stream classifier with arbitrary access
// traces and checks its structural invariants: verdicts are deterministic,
// an all-sequential stream classifies sequential, and predictions are
// strictly increasing non-negative block indices beyond the last access.
func FuzzClassifier(f *testing.F) {
	f.Add([]byte{})                                                     // no accesses at all
	f.Add([]byte{0, 0, 0, 0, 1, 0, 0, 2, 0, 0, 3, 0})                   // sequential: each addr at lastEnd
	f.Add([]byte{1, 0, 1, 1, 8, 1, 1, 16, 1, 1, 24, 1})                 // strided: fixed 8 KB delta
	f.Add([]byte{2, 9, 2, 2, 3, 0, 2, 200, 1, 2, 50, 3, 2, 120, 0})     // random
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 0, 0, 2, 0, 1, 2, 0}) // interleaved streams
	f.Fuzz(func(t *testing.T, data []byte) {
		const blockBytes, depth = 64 * 1024, 4
		stream, addr, n := decodeAccesses(data)

		cl := newClassifier()
		ref := newClassifier() // determinism witness
		allSeq := map[int64]bool{}
		lastEnd := map[int64]int64{}
		count := map[int64]int64{}
		for i := range stream {
			s, a, ln := stream[i], addr[i], n[i]
			if prev, seen := lastEnd[s]; seen && a != prev {
				allSeq[s] = false
			} else if !seen {
				allSeq[s] = true
			}
			lastEnd[s] = a + ln
			count[s]++

			st := cl.observe(s, a, ln)
			ref.observe(s, a, ln)
			if st.accesses < classifyMinAccesses && st.pattern() != PatternUnknown {
				t.Fatalf("verdict %v after only %d accesses", st.pattern(), st.accesses)
			}
			pred := cl.predict(st, ln, blockBytes, depth)
			if len(pred) > 0 && st.pattern() == PatternSequential && len(pred) > depth {
				t.Fatalf("sequential prediction of %d blocks exceeds depth %d", len(pred), depth)
			}
			lastBlock := (a + ln - 1) / blockBytes
			for j, b := range pred {
				if b < 0 {
					t.Fatalf("negative predicted block %d", b)
				}
				if j > 0 && b <= pred[j-1] {
					t.Fatalf("predictions not strictly increasing: %v", pred)
				}
				if st.pattern() == PatternSequential && b <= lastBlock {
					t.Fatalf("sequential readahead block %d not past last accessed block %d", b, lastBlock)
				}
			}
		}

		for s, seq := range allSeq {
			st := cl.streams[s]
			if seq && count[s] >= classifyMinAccesses && st.pattern() != PatternSequential {
				t.Fatalf("stream %d: every transition sequential over %d accesses, verdict %v",
					s, count[s], st.pattern())
			}
		}
		gotSeq, gotStr, gotRnd, gotUnk := cl.counts()
		if total := gotSeq + gotStr + gotRnd + gotUnk; total != int64(len(cl.streams)) {
			t.Fatalf("counts sum %d != %d streams", total, len(cl.streams))
		}
		refSeq, refStr, refRnd, refUnk := ref.counts()
		if gotSeq != refSeq || gotStr != refStr || gotRnd != refRnd || gotUnk != refUnk {
			t.Fatal("same trace classified differently on replay")
		}
	})
}

// FuzzPredictStability replays one stream's trace twice and requires the
// final prediction to match byte-for-byte — prefetch decisions may depend
// only on the observed trace.
func FuzzPredictStability(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 1, 0, 0, 2, 0, 0, 3, 0, 0, 4, 0})
	f.Add([]byte{3, 0, 3, 3, 16, 3, 3, 32, 3, 3, 48, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		const blockBytes, depth = 64 * 1024, 4
		stream, addr, n := decodeAccesses(data)
		run := func() []int64 {
			cl := newClassifier()
			var last []int64
			for i := range stream {
				st := cl.observe(stream[i], addr[i], n[i])
				last = cl.predict(st, n[i], blockBytes, depth)
			}
			return last
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Fatalf("replay predicted %d blocks, first run %d", len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("replay prediction differs at %d: %v vs %v", i, a, b)
			}
		}
	})
}
