package ionode

import (
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/sim"
)

func cfg() disk.ArrayConfig {
	return disk.ArrayConfig{
		Disks:        5,
		DiskCapacity: 1 << 30,
		Position:     10 * sim.Millisecond,
		Overhead:     0,
		BWBytesPerS:  1e6,
	}
}

func TestRequestsQueueFIFO(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, 0, cfg())
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		eng.SpawnAt(fmt.Sprintf("c%d", i), sim.Time(i)*sim.Microsecond, func(p *sim.Process) {
			n.Do(p, 0, int64(i)*1<<20, 1000, false) // distinct, non-sequential addresses
			order = append(order, i)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
	req, bytes := n.Stats()
	if req != 4 || bytes != 4000 {
		t.Fatalf("stats %d req %d bytes", req, bytes)
	}
}

func TestContentionInflatesLatency(t *testing.T) {
	// One client alone vs. 8 clients at once: the 8th should see ~8x the
	// service time of a lone request, since the array serializes.
	lone := func() sim.Time {
		eng := sim.NewEngine()
		n := New(eng, 0, cfg())
		var d sim.Time
		eng.Spawn("c", func(p *sim.Process) { d, _ = n.Do(p, 0, 1<<20, 1000, false) })
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return d
	}()

	eng := sim.NewEngine()
	n := New(eng, 0, cfg())
	var worst sim.Time
	for i := 0; i < 8; i++ {
		i := i
		eng.Spawn(fmt.Sprintf("c%d", i), func(p *sim.Process) {
			d, _ := n.Do(p, 0, int64(i)*1<<20, 1000, false)
			if d > worst {
				worst = d
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if worst < 7*lone {
		t.Fatalf("worst contended latency %v, want >= 7x lone %v", worst, lone)
	}
}

func TestSyncChargesCost(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, 3, cfg())
	var d sim.Time
	eng.Spawn("c", func(p *sim.Process) { d, _ = n.Sync(p, 5*sim.Millisecond) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if d != 5*sim.Millisecond {
		t.Fatalf("sync cost %v", d)
	}
	if n.ID() != 3 {
		t.Fatalf("id %d", n.ID())
	}
}

func TestUtilizationReflectsBusyFraction(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, 0, cfg())
	eng.Spawn("c", func(p *sim.Process) {
		n.Do(p, 0, 0, 1000, false) // ~11 ms busy
		p.Sleep(89 * sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	u := n.Utilization(eng.Now())
	if u < 0.08 || u > 0.15 {
		t.Fatalf("utilization %f, want ~0.11", u)
	}
}

func TestDoSweepCheaperThanIndividualRequests(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, 0, cfg())
	var sweep, individual sim.Time
	eng.Spawn("c", func(p *sim.Process) {
		sweep, _ = n.DoSweep(p, 1, 0, 8*2048, 8)
		for i := int64(0); i < 8; i++ {
			d, _ := n.Do(p, 2, 1<<20+i*1<<19, 2048, false)
			individual += d
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sweep*2 > individual {
		t.Fatalf("sweep %v not clearly cheaper than %v", sweep, individual)
	}
	req, bytes := n.Stats()
	if req != 16 || bytes != 16*2048 {
		t.Fatalf("stats %d req %d bytes", req, bytes)
	}
	if n.Array() == nil || n.Array().Stats().Requests != 16 {
		t.Fatal("array accessor")
	}
}
