package ionode

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/sim"
)

func TestPolicyValidation(t *testing.T) {
	for _, name := range []string{"", "fcfs", "cscan", "sstf", "random"} {
		if err := (SchedConfig{Policy: name}).Validate(); err != nil {
			t.Fatalf("policy %q: %v", name, err)
		}
	}
	if err := (SchedConfig{Policy: "elevator"}).Validate(); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestCSCANPolicyOrder(t *testing.T) {
	pol := cscanPolicy{}
	// Head at 100: picks the smallest address at or past it.
	if i := pol.Next(100, []int64{50, 300, 150, 150}, nil); i != 2 {
		t.Fatalf("ahead pick = %d, want 2 (first 150)", i)
	}
	// Nothing ahead: wraps to the globally smallest.
	if i := pol.Next(1000, []int64{500, 50, 300}, nil); i != 1 {
		t.Fatalf("wrap pick = %d, want 1", i)
	}
}

func TestSSTFPolicyOrder(t *testing.T) {
	pol := sstfPolicy{}
	if i := pol.Next(100, []int64{0, 90, 300}, nil); i != 1 {
		t.Fatalf("sstf pick = %d, want 1", i)
	}
	// Exact ties break by arrival order.
	if i := pol.Next(100, []int64{110, 90}, nil); i != 0 {
		t.Fatalf("sstf tie pick = %d, want 0", i)
	}
}

// TestCSCANServiceOrder drives a node through the dispatcher with concurrent
// requests at scattered addresses and checks they are serviced in ascending
// address order after the anticipation window gathers them.
func TestCSCANServiceOrder(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, 0, disk.DefaultArrayConfig())
	if err := n.EnableSched(SchedConfig{Policy: "cscan", Window: sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	addrs := []int64{5 << 20, 1 << 20, 9 << 20, 3 << 20}
	var order []int64
	for i, a := range addrs {
		a := a
		eng.Spawn(fmt.Sprintf("req%d", i), func(p *sim.Process) {
			p.Sleep(sim.Time(i) * 10 * sim.Microsecond) // stagger arrivals inside the window
			if err := n.BlockIO(p, 1, a, 4096, true); err != nil {
				t.Errorf("req %d: %v", i, err)
			}
			order = append(order, a)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int64{1 << 20, 3 << 20, 5 << 20, 9 << 20}
	for i, a := range want {
		if order[i] != a {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
	st, ok := n.SchedStats()
	if !ok || st.Policy != "cscan" {
		t.Fatalf("SchedStats = %+v, %v", st, ok)
	}
	if st.Grants != 4 || st.Reorders == 0 || st.Anticipated != 1 {
		t.Fatalf("unexpected stats %+v", st)
	}
	if u := n.Utilization(eng.Now()); u <= 0 || u > 1 {
		t.Fatalf("utilization %v out of range", u)
	}
}

// TestFCFSDispatcherKeepsArrivalOrder: the fcfs policy through the dispatcher
// must preserve arrival order even with the anticipation window on.
func TestFCFSDispatcherKeepsArrivalOrder(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, 0, disk.DefaultArrayConfig())
	if err := n.EnableSched(SchedConfig{Policy: "fcfs", Window: sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	addrs := []int64{9 << 20, 1 << 20, 5 << 20}
	var order []int64
	for i, a := range addrs {
		a := a
		eng.Spawn(fmt.Sprintf("req%d", i), func(p *sim.Process) {
			p.Sleep(sim.Time(i) * 10 * sim.Microsecond)
			if err := n.BlockIO(p, 1, a, 4096, false); err != nil {
				t.Errorf("req %d: %v", i, err)
			}
			order = append(order, a)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		if order[i] != a {
			t.Fatalf("service order %v, want arrival order %v", order, addrs)
		}
	}
	st, _ := n.SchedStats()
	if st.Reorders != 0 {
		t.Fatalf("fcfs reordered: %+v", st)
	}
}

// TestSchedControlFirst: control work (addr < 0) is served ahead of queued
// data requests regardless of policy.
func TestSchedControlFirst(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, 0, disk.DefaultArrayConfig())
	if err := n.EnableSched(SchedConfig{Policy: "cscan", Window: sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	var gotSync sim.Time
	eng.Spawn("data", func(p *sim.Process) {
		if err := n.BlockIO(p, 1, 1<<20, 64<<10, true); err != nil {
			t.Errorf("data: %v", err)
		}
	})
	eng.Spawn("sync", func(p *sim.Process) {
		p.Sleep(10 * sim.Microsecond)
		if _, err := n.Sync(p, sim.Millisecond); err != nil {
			t.Errorf("sync: %v", err)
		}
		gotSync = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if gotSync == 0 {
		t.Fatal("sync never completed")
	}
}

// TestSchedBreakEjects: failing the node ejects queued requests with ErrDown
// and the restore path accepts new ones, including a waiter caught inside its
// anticipation sleep.
func TestSchedBreakEjects(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, 0, disk.DefaultArrayConfig())
	if err := n.EnableSched(SchedConfig{Policy: "cscan", Window: 5 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	var firstErr, secondErr error
	eng.Spawn("anticipating", func(p *sim.Process) {
		firstErr = n.BlockIO(p, 1, 1<<20, 4096, true)
	})
	eng.Spawn("queued", func(p *sim.Process) {
		p.Sleep(100 * sim.Microsecond)
		secondErr = n.BlockIO(p, 1, 2<<20, 4096, true)
	})
	eng.Spawn("chaos", func(p *sim.Process) {
		p.Sleep(sim.Millisecond) // inside the 5 ms anticipation window
		n.Fail(p)
		p.Sleep(20 * sim.Millisecond)
		n.Restore(p)
		if err := n.BlockIO(p, 1, 3<<20, 4096, false); err != nil {
			t.Errorf("post-restore request: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(firstErr, ErrDown) || !errors.Is(secondErr, ErrDown) {
		t.Fatalf("ejected errors = %v, %v; want ErrDown", firstErr, secondErr)
	}
}

// TestRandomPolicySeeded: the random policy's choices are a pure function of
// the seed.
func TestRandomPolicySeeded(t *testing.T) {
	run := func(seed uint64) []int64 {
		eng := sim.NewEngine()
		n := New(eng, 0, disk.DefaultArrayConfig())
		if err := n.EnableSched(SchedConfig{Policy: "random", Window: sim.Millisecond, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		var order []int64
		for i := 0; i < 6; i++ {
			i := i
			eng.Spawn(fmt.Sprintf("req%d", i), func(p *sim.Process) {
				p.Sleep(sim.Time(i) * 10 * sim.Microsecond)
				a := int64(i) << 20
				if err := n.BlockIO(p, 1, a, 4096, true); err != nil {
					t.Errorf("req %d: %v", i, err)
				}
				order = append(order, a)
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b, c := run(7), run(7), run(8)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Logf("different seeds coincided (possible but suspicious): %v", a)
	}
}
