package ionode

import (
	"fmt"

	"repro/internal/sim"
)

// SchedConfig selects the disk-scheduling policy in front of a node's array.
// An empty Policy keeps the legacy strict-FIFO resource queue, byte-identical
// to earlier revisions; any named policy routes requests through a dispatcher
// that picks the next request to service when the array frees up.
type SchedConfig struct {
	// Policy names the scheduling discipline: "" (legacy FIFO resource),
	// "fcfs", "cscan", "sstf", or "random".
	Policy string

	// Window is the anticipatory batching bound: when a request arrives at an
	// idle array it is held for up to Window so that requests arriving just
	// behind it are scheduled together (C-SCAN over a batch instead of FCFS
	// over singletons). 0 disables anticipation.
	Window sim.Time

	// Seed feeds the policy's random stream (used by "random"; deterministic
	// tie-breaking policies ignore it). Each node derives its own substream.
	Seed uint64
}

// DefaultWindow is a reasonable anticipatory batching bound: long enough to
// collect a round's worth of near-simultaneous arrivals at an idle array,
// short enough not to idle the disk visibly between batches.
const DefaultWindow = 500 * sim.Microsecond

// Validate rejects unknown policy names.
func (c SchedConfig) Validate() error {
	if c.Policy == "" {
		return nil
	}
	_, err := newPolicy(c.Policy)
	return err
}

// Policy picks which pending request the array services next. addrs holds
// the pending requests' starting array addresses in arrival order; head is
// where the arm ended after the previous grant. Implementations must be
// deterministic given (head, addrs, rng state).
type Policy interface {
	Name() string
	Next(head int64, addrs []int64, rng *sim.RNG) int
}

func newPolicy(name string) (Policy, error) {
	switch name {
	case "fcfs":
		return fcfsPolicy{}, nil
	case "cscan":
		return cscanPolicy{}, nil
	case "sstf":
		return sstfPolicy{}, nil
	case "random":
		return randomPolicy{}, nil
	}
	return nil, fmt.Errorf("ionode: unknown scheduling policy %q (want fcfs, cscan, sstf or random)", name)
}

// fcfsPolicy services requests in arrival order — the paper-faithful
// baseline, expressed through the dispatcher so policies compare like for
// like (same anticipation window, same accounting).
type fcfsPolicy struct{}

func (fcfsPolicy) Name() string                                   { return "fcfs" }
func (fcfsPolicy) Next(head int64, addrs []int64, _ *sim.RNG) int { return 0 }

// cscanPolicy is the circular elevator: service the pending request with the
// smallest address at or past the head, wrapping to the globally smallest
// address when nothing lies ahead. Ties break by arrival order (sort is not
// needed; one scan suffices).
type cscanPolicy struct{}

func (cscanPolicy) Name() string { return "cscan" }

func (cscanPolicy) Next(head int64, addrs []int64, _ *sim.RNG) int {
	ahead, lowest := -1, 0
	for i, a := range addrs {
		if a >= head && (ahead < 0 || a < addrs[ahead]) {
			ahead = i
		}
		if a < addrs[lowest] {
			lowest = i
		}
	}
	if ahead >= 0 {
		return ahead
	}
	return lowest
}

// sstfPolicy services the pending request closest to the head (shortest seek
// time first). Ties break by arrival order.
type sstfPolicy struct{}

func (sstfPolicy) Name() string { return "sstf" }

func (sstfPolicy) Next(head int64, addrs []int64, _ *sim.RNG) int {
	best := 0
	bestDist := dist(addrs[0], head)
	for i, a := range addrs[1:] {
		if d := dist(a, head); d < bestDist {
			best, bestDist = i+1, d
		}
	}
	return best
}

func dist(a, b int64) int64 {
	if a < b {
		return b - a
	}
	return a - b
}

// randomPolicy picks uniformly from the pending requests using the seeded
// stream — the control policy demonstrating that scheduling runs off the
// deterministic RNG, and a worst-case for positioning time.
type randomPolicy struct{}

func (randomPolicy) Name() string { return "random" }

func (randomPolicy) Next(_ int64, addrs []int64, rng *sim.RNG) int {
	return rng.Intn(len(addrs))
}

// schedWaiter is one request pending at the dispatcher. addr < 0 marks
// position-less control work (flush round-trips, scrub and rebuild slices),
// which every policy serves ahead of data requests in arrival order.
type schedWaiter struct {
	p            *sim.Process
	addr, span   int64
	ejected      bool
	anticipating bool
}

// dispatcher replaces the node's FIFO resource with a policy-driven,
// capacity-1 server: at most one request is in service; when it completes,
// the policy picks the next among the queued waiters. A request arriving at
// an idle server may first hold it for the anticipation window so near-
// simultaneous arrivals are scheduled as a batch.
type dispatcher struct {
	name   string
	pol    Policy
	window sim.Time
	rng    *sim.RNG

	busy    bool
	broken  bool
	head    int64 // array address where the previous grant ended
	waiters []*schedWaiter
	scratch []int64

	stats     SchedStats
	busySince sim.Time
	busyTime  sim.Time
}

// SchedStats counts a dispatcher's decisions.
type SchedStats struct {
	Policy      string
	Grants      int64 // requests granted service
	Reorders    int64 // grants that bypassed strict arrival order
	Wraps       int64 // elevator wrap-arounds (grant address below the head)
	Anticipated int64 // anticipation windows that gathered extra requests
	QueuePeak   int   // largest pending-request population observed
}

func newDispatcher(name string, cfg SchedConfig) (*dispatcher, error) {
	pol, err := newPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	return &dispatcher{
		name:   name,
		pol:    pol,
		window: cfg.Window,
		rng:    sim.NewRNG(cfg.Seed),
		stats:  SchedStats{Policy: pol.Name()},
	}, nil
}

// Acquire queues p for the service slot; it returns once the policy grants
// service (the caller then sleeps its service time and calls Release), or
// sim.ErrBroken if the node fails while the request is pending.
func (d *dispatcher) Acquire(p *sim.Process, addr, span int64) error {
	if d.broken {
		return sim.ErrBroken
	}
	w := &schedWaiter{p: p, addr: addr, span: span}
	if d.busy {
		d.push(w)
		p.Park("ionode-sched:" + d.name)
		if w.ejected {
			return sim.ErrBroken
		}
		return nil
	}
	d.busy = true
	d.busySince = p.Now()
	if d.window > 0 && addr >= 0 {
		// Anticipation: hold the idle server briefly so requests arriving
		// just behind this one are scheduled as a batch.
		w.anticipating = true
		d.push(w)
		p.Sleep(d.window)
		w.anticipating = false
		if w.ejected {
			d.idle(p.Now())
			return sim.ErrBroken
		}
		if len(d.waiters) > 1 {
			d.stats.Anticipated++
		}
		i := d.pick()
		next := d.take(i)
		d.grant(next, i)
		if next == w {
			return nil
		}
		p.Wake(next.p)
		p.Park("ionode-sched:" + d.name)
		if w.ejected {
			return sim.ErrBroken
		}
		return nil
	}
	d.grant(w, 0)
	return nil
}

// Release completes the in-service request: the policy picks the next waiter
// or the server goes idle.
func (d *dispatcher) Release(p *sim.Process) {
	if !d.busy {
		panic(fmt.Sprintf("ionode: release of idle dispatcher %q", d.name))
	}
	if len(d.waiters) == 0 {
		d.idle(p.Now())
		return
	}
	i := d.pick()
	w := d.take(i)
	d.grant(w, i)
	p.Wake(w.p)
}

// Break ejects every pending request (their Acquire returns sim.ErrBroken)
// and refuses new arrivals until Repair; the request in service completes.
// A waiter inside its anticipation sleep cannot be woken (its timer wake is
// pending) — it is flagged and cleans up when the sleep returns.
func (d *dispatcher) Break(p *sim.Process) {
	if d.broken {
		return
	}
	d.broken = true
	for _, w := range d.waiters {
		w.ejected = true
		if !w.anticipating {
			p.Wake(w.p)
		}
	}
	d.waiters = d.waiters[:0]
}

// Repair restores service after Break.
func (d *dispatcher) Repair() { d.broken = false }

// Utilization reports the fraction of time the server was busy up to `at`.
func (d *dispatcher) Utilization(at sim.Time) float64 {
	if at <= 0 {
		return 0
	}
	busy := d.busyTime
	if d.busy {
		busy += at - d.busySince
	}
	return float64(busy) / float64(at)
}

func (d *dispatcher) push(w *schedWaiter) {
	d.waiters = append(d.waiters, w)
	if n := len(d.waiters); n > d.stats.QueuePeak {
		d.stats.QueuePeak = n
	}
}

// pick chooses the next waiter: control requests (addr < 0) go first in
// arrival order; otherwise the policy chooses among the data requests.
func (d *dispatcher) pick() int {
	for i, w := range d.waiters {
		if w.addr < 0 {
			return i
		}
	}
	d.scratch = d.scratch[:0]
	for _, w := range d.waiters {
		d.scratch = append(d.scratch, w.addr)
	}
	i := d.pol.Next(d.head, d.scratch, d.rng)
	if i < 0 || i >= len(d.waiters) {
		panic(fmt.Sprintf("ionode: policy %q picked %d of %d", d.pol.Name(), i, len(d.waiters)))
	}
	return i
}

func (d *dispatcher) take(i int) *schedWaiter {
	w := d.waiters[i]
	d.waiters = append(d.waiters[:i], d.waiters[i+1:]...)
	return w
}

func (d *dispatcher) grant(w *schedWaiter, picked int) {
	d.stats.Grants++
	if picked != 0 {
		d.stats.Reorders++
	}
	if w.addr >= 0 {
		if w.addr < d.head {
			d.stats.Wraps++
		}
		d.head = w.addr + w.span
	}
}

func (d *dispatcher) idle(now sim.Time) {
	d.busy = false
	d.busyTime += now - d.busySince
}
