// Package ionode models a Paragon I/O node: a service processor with a FIFO
// request queue in front of one RAID-3 disk array. Compute-node requests
// queue here, so contention among the 128 application nodes for the 16 I/O
// nodes — the effect behind the paper's large per-operation times — emerges
// from the model rather than being hard-coded.
//
// A node can be taken out of service by fault injection: Fail marks it down
// and ejects every queued request (callers receive ErrDown and run the PFS
// failover path), Restore brings it back. Independently, a latency factor
// can be raised to model injected latency storms, and the array behind the
// node can be degraded (disk failure) without the node itself going down.
package ionode

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/disk"
	"repro/internal/integrity"
	"repro/internal/sim"
)

// ErrDown is returned for requests issued to (or ejected from) a node that
// is out of service, and for requests to a node whose array has lost more
// drives than parity covers.
var ErrDown = errors.New("ionode: I/O node is down")

// Node is one I/O node.
type Node struct {
	id    int
	queue *sim.Resource
	sched *dispatcher // nil = legacy strict-FIFO queue
	array *disk.Array
	cache *cache.Cache     // nil when caching is disabled
	integ *integrity.Store // nil when the integrity layer is disabled

	down      bool
	latency   float64 // service-time multiplier; 0 or 1 = nominal
	downSince sim.Time

	requests int64
	bytes    int64
	failures int64
	rejected int64    // requests refused or ejected while down
	downTime sim.Time // completed outage intervals
}

// New creates I/O node id with the given array behind a capacity-1 FIFO
// server (one outstanding array operation at a time, as on the real machine).
func New(eng *sim.Engine, id int, cfg disk.ArrayConfig) *Node {
	return &Node{
		id:    id,
		queue: sim.NewResource(eng, fmt.Sprintf("ionode%d", id), 1),
		array: disk.NewArray(cfg),
	}
}

// ID returns the node's identifier.
func (n *Node) ID() int { return n.id }

// Array exposes the node's disk array (for tests, capacity checks, and fault
// injection).
func (n *Node) Array() *disk.Array { return n.array }

// Queue exposes the node's request queue (for rebuild processes that must
// contend with foreground requests). With a scheduling policy installed, the
// queue is bypassed — such callers use AcquireService/ReleaseService, which
// route through whichever server is active.
func (n *Node) Queue() *sim.Resource { return n.queue }

// EnableSched installs a disk-scheduling policy in front of the array,
// replacing the strict-FIFO resource queue. Call before the simulation
// starts issuing requests. An empty policy name is a no-op (legacy FIFO).
func (n *Node) EnableSched(cfg SchedConfig) error {
	if cfg.Policy == "" {
		return nil
	}
	d, err := newDispatcher(fmt.Sprintf("ionode%d", n.id), cfg)
	if err != nil {
		return err
	}
	n.sched = d
	return nil
}

// SchedStats returns the scheduling dispatcher's counters; ok is false when
// the node runs the legacy FIFO queue.
func (n *Node) SchedStats() (SchedStats, bool) {
	if n.sched == nil {
		return SchedStats{}, false
	}
	return n.sched.stats, true
}

// acquire queues p for the node's service slot. addr/span position the
// request in array address space for the scheduling policy; addr < 0 marks
// position-less control work, served in arrival order under every policy.
func (n *Node) acquire(p *sim.Process, addr, span int64) error {
	if n.sched != nil {
		return n.sched.Acquire(p, addr, span)
	}
	return n.queue.AcquireWait(p)
}

// release completes the request p held the service slot for.
func (n *Node) release(p *sim.Process) {
	if n.sched != nil {
		n.sched.Release(p)
		return
	}
	n.queue.Release(p)
}

// AcquireService queues p for the node's service slot like a request would —
// through the scheduling policy when one is installed. It is the entry point
// for control work (rebuild slices) that must contend with foreground
// traffic; addr < 0 marks position-less work.
func (n *Node) AcquireService(p *sim.Process, addr, span int64) error {
	return n.acquire(p, addr, span)
}

// ReleaseService releases a slot taken with AcquireService.
func (n *Node) ReleaseService(p *sim.Process) { n.release(p) }

// EnableCache attaches a block cache between the node's queue and its
// array: demand hits bypass the queue entirely, misses and write-backs go
// through BlockIO. Call before the simulation starts issuing requests.
func (n *Node) EnableCache(eng *sim.Engine, cfg cache.Config) {
	n.cache = cache.New(eng, fmt.Sprintf("ion%d-cache", n.id), cfg, n)
}

// Cache returns the node's cache, or nil when caching is disabled.
func (n *Node) Cache() *cache.Cache { return n.cache }

// EnableIntegrity attaches a checksum store to the node's array: writes are
// checksummed and reads verified (both charged the store's verify cost while
// the request holds the queue), parity-repairable mismatches are
// reconstructed in place, and unrepairable ones fail the read with
// integrity.ErrCorrupt. Pass a normalized config; call before the simulation
// starts issuing requests.
func (n *Node) EnableIntegrity(cfg integrity.Config) {
	n.integ = integrity.NewStore(n.id, cfg)
}

// Integrity returns the node's checksum store, or nil when the integrity
// layer is disabled.
func (n *Node) Integrity() *integrity.Store { return n.integ }

// IntegrityStats returns the node's integrity counters; ok is false when the
// layer is disabled.
func (n *Node) IntegrityStats() (integrity.Stats, bool) {
	if n.integ == nil {
		return integrity.Stats{}, false
	}
	return n.integ.Stats(), true
}

// StartScrubber spawns the background scrub process when the node's
// integrity config asks for one: it sweeps written blocks at the configured
// rate, verifying each and repairing latent parity-repairable errors, until
// the scrub window closes. Each slice contends FIFO with foreground requests
// for the node queue.
func (n *Node) StartScrubber(eng *sim.Engine) {
	if n.integ == nil || !n.integ.Config().Scrub.Enabled {
		return
	}
	cfg := n.integ.Config().Scrub
	eng.Spawn(fmt.Sprintf("ion%d-scrub", n.id), func(p *sim.Process) {
		n.scrubLoop(p, cfg)
	})
}

// scrubLoop is the scrubber body: one slice of written blocks per queue
// acquisition, paced to the configured rate, standing down at the window end
// (the process must terminate for the engine to drain).
func (n *Node) scrubLoop(p *sim.Process, cfg integrity.ScrubConfig) {
	bs := n.integ.BlockBytes()
	maxBlocks := int(cfg.SliceBytes / bs)
	if maxBlocks < 1 {
		maxBlocks = 1
	}
	period := sim.Time(float64(cfg.SliceBytes) / cfg.RateBytesPerS * float64(sim.Second))
	if period < sim.Millisecond {
		period = sim.Millisecond
	}
	for p.Now() < cfg.Window {
		if n.down || n.array.Dead() {
			p.Sleep(period)
			continue
		}
		start := p.Now()
		if err := n.acquire(p, -1, 0); err != nil {
			p.Sleep(period)
			continue
		}
		if n.down || n.array.Dead() {
			n.release(p)
			p.Sleep(period)
			continue
		}
		idxs, _ := n.integ.ScrubNext(maxBlocks)
		if len(idxs) == 0 {
			n.release(p)
			p.Sleep(period)
			continue
		}
		bytes := int64(len(idxs)) * bs
		p.Sleep(n.scale(n.array.ScrubRead(bytes)) + n.integ.VerifyCost(bytes))
		for _, idx := range idxs {
			class, corrupt := n.integ.ScrubCheck(p.Now(), idx)
			if !corrupt {
				continue
			}
			if class.Repairable() && !n.array.Degraded() && !n.array.Dead() {
				p.Sleep(n.scale(n.array.RepairService(bs)))
				n.integ.Repair(p.Now(), idx, "scrub")
			}
			// Unrepairable: detection is recorded; the block stays corrupt
			// until a rewrite or replica heal clears it.
		}
		n.release(p)
		took := p.Now() - start
		n.integ.CountScrub(int64(len(idxs)), took)
		if took < period {
			p.Sleep(period - took)
		}
	}
}

// CacheStats returns the node's cache counters; ok is false when caching is
// disabled.
func (n *Node) CacheStats() (cache.Stats, bool) {
	if n.cache == nil {
		return cache.Stats{}, false
	}
	s := n.cache.Stats()
	s.Node = n.id
	return s, true
}

// Drain synchronously flushes the cache's dirty blocks for one stream (the
// FORFLUSH path). A no-op without a cache.
func (n *Node) Drain(p *sim.Process, stream int64) error {
	if n.cache == nil {
		return nil
	}
	return n.cache.Drain(p, stream)
}

// Fail takes the node out of service at the current instant: queued requests
// are ejected with ErrDown and new requests are refused until Restore. The
// request in service, if any, completes (its data was already in flight).
// With a cache attached, its outage policy runs first — while the node can
// still reach the array — so FlushOnFail drains charge the failing instant
// and lost dirty blocks are accounted.
func (n *Node) Fail(p *sim.Process) {
	if n.down {
		return
	}
	if n.cache != nil {
		n.cache.OnFail(p)
	}
	n.down = true
	n.failures++
	n.downSince = p.Now()
	if n.sched != nil {
		n.sched.Break(p)
		return
	}
	n.queue.Break(p)
}

// Restore returns the node to service.
func (n *Node) Restore(p *sim.Process) {
	if !n.down {
		return
	}
	n.down = false
	n.downTime += p.Now() - n.downSince
	if n.sched != nil {
		n.sched.Repair()
	} else {
		n.queue.Repair()
	}
	if n.cache != nil {
		n.cache.OnRestore(p)
	}
}

// Down reports whether the node is out of service.
func (n *Node) Down() bool { return n.down }

// SetLatencyFactor scales subsequent request service times by f (>= 1 models
// an injected latency storm; 1 or 0 restores nominal service).
func (n *Node) SetLatencyFactor(f float64) { n.latency = f }

// LatencyFactor returns the current service-time multiplier (1 if nominal).
func (n *Node) LatencyFactor() float64 {
	if n.latency == 0 {
		return 1
	}
	return n.latency
}

// scale applies the latency factor. The nominal path returns t unchanged (no
// float round-trip), so healthy runs are bit-identical.
func (n *Node) scale(t sim.Time) sim.Time {
	if n.latency == 0 || n.latency == 1 {
		return t
	}
	return sim.Time(float64(t) * n.latency)
}

// usable refuses service while the node is down or its array is dead.
func (n *Node) usable() error {
	if n.down || n.array.Dead() {
		n.rejected++
		return ErrDown
	}
	return nil
}

// Do services one request against the array byte address space. Without a
// cache the caller queues FIFO and is charged the array service time; with
// one, hits are served from node memory and only misses and write-backs
// reach the queue. The stream key (the file identity) drives
// sequential-access detection; read selects the degraded-mode read path when
// a drive is out. It returns the total time spent (queueing + service) and
// ErrDown if the node is (or goes) out of service before the request
// reaches the array.
func (n *Node) Do(p *sim.Process, stream, addr, bytes int64, read bool) (sim.Time, error) {
	start := p.Now()
	if err := n.usable(); err != nil {
		return 0, err
	}
	if n.cache != nil {
		var err error
		if read {
			err = n.cache.Read(p, stream, addr, bytes)
		} else {
			err = n.cache.Write(p, stream, addr, bytes)
		}
		return p.Now() - start, err
	}
	err := n.BlockIO(p, stream, addr, bytes, read)
	return p.Now() - start, err
}

// BlockIO is the raw queue + array service path (the cache.Backend
// implementation): the caller queues FIFO, then is charged the array service
// time. The node's request/byte counters track this physical traffic, so
// with a cache attached they report array-level I/O after hit absorption
// and write-behind coalescing.
func (n *Node) BlockIO(p *sim.Process, stream, addr, bytes int64, read bool) error {
	if err := n.usable(); err != nil {
		return err
	}
	if err := n.acquire(p, addr, bytes); err != nil {
		n.rejected++
		return ErrDown
	}
	if err := n.usable(); err != nil {
		// The array died while we queued (second drive failure).
		n.release(p)
		return ErrDown
	}
	svc := n.scale(n.array.Service(stream, addr, bytes, read))
	if n.integ != nil {
		svc += n.integ.VerifyCost(bytes)
	}
	p.Sleep(svc)
	corrupt := false
	if n.integ != nil {
		if read {
			corrupt = n.verifyRead(p, addr, bytes)
		} else {
			n.integ.CommitWrite(p.Now(), addr, bytes)
		}
	}
	n.release(p)
	n.requests++
	n.bytes += bytes
	if corrupt {
		n.integ.CountCorruptRead()
		return fmt.Errorf("ionode%d: read at %d: %w", n.id, addr, integrity.ErrCorrupt)
	}
	return nil
}

// verifyRead runs checksum verification over a completed read, repairing
// parity-repairable mismatches in place (the reconstruction is charged while
// the queue is still held) and reporting whether unrepairable corruption
// remains — in which case the read must fail rather than serve poison.
func (n *Node) verifyRead(p *sim.Process, addr, bytes int64) bool {
	dets := n.integ.CheckRead(p.Now(), addr, bytes)
	bad := false
	for _, d := range dets {
		if d.Class.Repairable() && !n.array.Degraded() && !n.array.Dead() {
			p.Sleep(n.scale(n.array.RepairService(n.integ.BlockBytes())))
			n.integ.Repair(p.Now(), d.Block, "read")
			continue
		}
		bad = true
	}
	return bad
}

// DoSweep services a scatter-gather batch: `requests` disjoint pieces
// totalling `bytes`, submitted together and serviced in one sorted arm pass
// starting at addr. The caller queues once for the whole sweep. Sweeps
// bypass the block cache: they are the PPFS aggregation path, already
// coalesced client-side.
func (n *Node) DoSweep(p *sim.Process, stream, addr, bytes int64, requests int) (sim.Time, error) {
	start := p.Now()
	if err := n.usable(); err != nil {
		return 0, err
	}
	if err := n.acquire(p, addr, bytes); err != nil {
		n.rejected++
		return p.Now() - start, ErrDown
	}
	if err := n.usable(); err != nil {
		n.release(p)
		return p.Now() - start, ErrDown
	}
	svc := n.scale(n.array.SweepServiceTime(stream, addr, bytes, requests))
	if n.integ != nil {
		// Sweeps carry disjoint pieces whose addresses are not recoverable
		// from (addr, bytes), so they pay the checksum compute cost but do
		// not update per-block state.
		svc += n.integ.VerifyCost(bytes)
	}
	p.Sleep(svc)
	n.release(p)
	n.requests += int64(requests)
	n.bytes += bytes
	return p.Now() - start, nil
}

// Sync charges a cheap queue round-trip with no data transfer; used for
// flush and size queries.
func (n *Node) Sync(p *sim.Process, cost sim.Time) (sim.Time, error) {
	start := p.Now()
	if err := n.usable(); err != nil {
		return 0, err
	}
	if err := n.acquire(p, -1, 0); err != nil {
		n.rejected++
		return p.Now() - start, ErrDown
	}
	p.Sleep(n.scale(cost))
	n.release(p)
	return p.Now() - start, nil
}

// Stats reports accumulated request count and bytes moved through this node.
func (n *Node) Stats() (requests, bytes int64) { return n.requests, n.bytes }

// FaultStats summarizes the node's fault history.
type FaultStats struct {
	Failures int64    // outages begun
	Rejected int64    // requests refused or ejected while down
	DownTime sim.Time // completed outage intervals
}

// FaultStats returns the node's fault counters. DownTime covers completed
// outages; an outage still open is reported via DownSince.
func (n *Node) FaultStats() FaultStats {
	return FaultStats{Failures: n.failures, Rejected: n.rejected, DownTime: n.downTime}
}

// DownSince returns the start of the current outage, if the node is down.
func (n *Node) DownSince() (sim.Time, bool) {
	if !n.down {
		return 0, false
	}
	return n.downSince, true
}

// Utilization reports the fraction of time the array server was busy up to
// the given instant.
func (n *Node) Utilization(at sim.Time) float64 {
	if n.sched != nil {
		return n.sched.Utilization(at)
	}
	return n.queue.StatsAt(at).Utilization
}
