// Package ionode models a Paragon I/O node: a service processor with a FIFO
// request queue in front of one RAID-3 disk array. Compute-node requests
// queue here, so contention among the 128 application nodes for the 16 I/O
// nodes — the effect behind the paper's large per-operation times — emerges
// from the model rather than being hard-coded.
package ionode

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/sim"
)

// Node is one I/O node.
type Node struct {
	id    int
	queue *sim.Resource
	array *disk.Array

	requests int64
	bytes    int64
}

// New creates I/O node id with the given array behind a capacity-1 FIFO
// server (one outstanding array operation at a time, as on the real machine).
func New(eng *sim.Engine, id int, cfg disk.ArrayConfig) *Node {
	return &Node{
		id:    id,
		queue: sim.NewResource(eng, fmt.Sprintf("ionode%d", id), 1),
		array: disk.NewArray(cfg),
	}
}

// ID returns the node's identifier.
func (n *Node) ID() int { return n.id }

// Array exposes the node's disk array (for tests and capacity checks).
func (n *Node) Array() *disk.Array { return n.array }

// Do services one request against the array byte address space: the caller
// queues FIFO, then is charged the array service time. The stream key (the
// file identity) drives sequential-access detection. It returns the total
// time spent (queueing + service).
func (n *Node) Do(p *sim.Process, stream, addr, bytes int64) sim.Time {
	start := p.Now()
	n.queue.Acquire(p)
	svc := n.array.ServiceTime(stream, addr, bytes)
	p.Sleep(svc)
	n.queue.Release(p)
	n.requests++
	n.bytes += bytes
	return p.Now() - start
}

// DoSweep services a scatter-gather batch: `requests` disjoint pieces
// totalling `bytes`, submitted together and serviced in one sorted arm pass
// starting at addr. The caller queues once for the whole sweep.
func (n *Node) DoSweep(p *sim.Process, stream, addr, bytes int64, requests int) sim.Time {
	start := p.Now()
	n.queue.Acquire(p)
	svc := n.array.SweepServiceTime(stream, addr, bytes, requests)
	p.Sleep(svc)
	n.queue.Release(p)
	n.requests += int64(requests)
	n.bytes += bytes
	return p.Now() - start
}

// Sync charges a cheap queue round-trip with no data transfer; used for
// flush and size queries.
func (n *Node) Sync(p *sim.Process, cost sim.Time) sim.Time {
	start := p.Now()
	n.queue.Acquire(p)
	p.Sleep(cost)
	n.queue.Release(p)
	return p.Now() - start
}

// Stats reports accumulated request count and bytes moved through this node.
func (n *Node) Stats() (requests, bytes int64) { return n.requests, n.bytes }

// Utilization reports the fraction of time the array server was busy up to
// the given instant.
func (n *Node) Utilization(at sim.Time) float64 {
	return n.queue.StatsAt(at).Utilization
}
