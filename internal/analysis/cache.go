package analysis

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/sim"
)

// CacheReport is the cache-effectiveness section of a run report: per-node
// counters plus their aggregate. The derived ratios (hit ratio, prefetch
// accuracy, write-behind coalescing) answer the §8 what-if directly — the
// paper's PFS had no I/O-node cache, so every access pattern paid the full
// array path.
type CacheReport struct {
	PerNode []cache.Stats
	Total   cache.Stats
}

// BuildCacheReport assembles a report from per-node stats (as returned by
// pfs.FileSystem.CacheStats). Returns nil when caching was disabled.
func BuildCacheReport(per []cache.Stats) *CacheReport {
	if len(per) == 0 {
		return nil
	}
	return &CacheReport{PerNode: per, Total: cache.Aggregate(per)}
}

// RenderCacheReport formats the report as a text section in the style of the
// other run-report sections.
func RenderCacheReport(r *CacheReport) string {
	if r == nil {
		return ""
	}
	t := r.Total
	var b strings.Builder
	fmt.Fprintf(&b, "Cache effectiveness:\n")
	fmt.Fprintf(&b, "  demand          %d hits / %d misses  (hit ratio %.1f%%)\n",
		t.Hits, t.Misses, 100*t.HitRatio())
	fmt.Fprintf(&b, "  bytes           %d from cache, %d fetched in %d array reads\n",
		t.HitBytes, t.MissBytes, t.Fetches)
	fmt.Fprintf(&b, "  prefetch        %d issued, %d used, %d wasted, %d aborted  (accuracy %.1f%%, %d delayed hits)\n",
		t.PrefetchIssued, t.PrefetchUsed, t.PrefetchWasted, t.PrefetchAborted,
		100*t.PrefetchAccuracy(), t.DelayedHits)
	fmt.Fprintf(&b, "  write-behind    %d dirty installs (%d B), %d flushes x %.1f blocks, %d write-through\n",
		t.DirtyInstalls, t.WriteBytes, t.Flushes, t.Coalescing(), t.WriteThrough)
	fmt.Fprintf(&b, "  eviction        %d total, %d dirty\n", t.Evictions, t.DirtyEvictions)
	if t.LostDirtyBlocks > 0 || t.OutageDrains > 0 {
		fmt.Fprintf(&b, "  outages         %d dirty blocks lost (%d B), %d graceful drains\n",
			t.LostDirtyBlocks, t.LostDirtyBytes, t.OutageDrains)
	}
	fmt.Fprintf(&b, "  streams         %d sequential, %d strided, %d random, %d unclassified\n",
		t.SeqStreams, t.StridedStreams, t.RandomStreams, t.UnknownStreams)
	if len(r.PerNode) > 1 {
		fmt.Fprintf(&b, "  per node:\n")
		fmt.Fprintf(&b, "  %6s %10s %10s %8s %10s %10s %8s\n",
			"node", "hits", "misses", "hit%", "pf used", "flushes", "coalesce")
		for _, s := range r.PerNode {
			fmt.Fprintf(&b, "  %6d %10d %10d %7.1f%% %10d %10d %8.1f\n",
				s.Node, s.Hits, s.Misses, 100*s.HitRatio(), s.PrefetchUsed,
				s.Flushes, s.Coalescing())
		}
	}
	return b.String()
}

// CacheComparison is one workload's cached-versus-uncached outcome: the mean
// latency of its dominant operation and the wall-clock time, with the cache's
// own effectiveness ratios alongside.
type CacheComparison struct {
	Name string // workload label
	Op   string // the operation class compared (e.g. "Read")
	Ops  int64  // operations of that class in the base run

	BaseMean   sim.Time // mean op latency, cache disabled
	CachedMean sim.Time // mean op latency, cache enabled
	BaseWall   sim.Time
	CachedWall sim.Time

	HitRatio         float64
	PrefetchAccuracy float64
	Coalescing       float64
}

// Reduction returns the fractional mean-latency reduction the cache bought
// (0.25 = 25% faster; negative = the cache hurt).
func (c CacheComparison) Reduction() float64 {
	if c.BaseMean == 0 {
		return 0
	}
	return 1 - float64(c.CachedMean)/float64(c.BaseMean)
}

// RenderCacheSweep formats a cached-versus-uncached comparison table.
func RenderCacheSweep(title string, rows []CacheComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  %-22s %-10s %6s %12s %12s %9s %6s %6s %8s\n",
		"workload", "op", "ops", "base mean", "cached mean", "reduction",
		"hit%", "pf%", "coalesce")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-22s %-10s %6d %12s %12s %8.1f%% %5.1f%% %5.1f%% %8.1f\n",
			r.Name, r.Op, r.Ops, fmtT(r.BaseMean), fmtT(r.CachedMean),
			100*r.Reduction(), 100*r.HitRatio, 100*r.PrefetchAccuracy, r.Coalescing)
	}
	return b.String()
}
