package analysis

import (
	"fmt"
	"strings"

	"repro/internal/collective"
	"repro/internal/ionode"
	"repro/internal/sim"
)

// RenderCollectiveReport formats the two-phase aggregation counters as a text
// section: round outcomes, logical-to-physical request collapse, the shuffle
// volume the aggregation pattern moved over the mesh, and the before/after
// request-size histograms that make the collapse visible.
func RenderCollectiveReport(st *collective.Stats) string {
	if st == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Collective I/O:\n")
	fmt.Fprintf(&b, "  rounds          %d total, %d full, %d flushed by straggler window\n",
		st.Rounds, st.FullRounds, st.TimeoutRounds)
	fmt.Fprintf(&b, "  requests        %d logical -> %d physical  (%.1fx reduction, %d merged extents)\n",
		st.RequestsIn, st.RequestsOut, st.Reduction(), st.MergedExtents)
	fmt.Fprintf(&b, "  bytes           %s in, %s out\n",
		HumanBytes(st.BytesIn), HumanBytes(st.BytesOut))
	fmt.Fprintf(&b, "  shuffle         %d messages, %s over the mesh\n",
		st.ShuffleMsgs, HumanBytes(st.ShuffleBytes))
	fmt.Fprintf(&b, "  request sizes   %-12s %12s %12s\n", "bucket", "logical", "physical")
	for i := 0; i < collective.NumBuckets; i++ {
		if st.In.Buckets[i] == 0 && st.Out.Buckets[i] == 0 {
			continue
		}
		fmt.Fprintf(&b, "                  %-12s %12d %12d\n",
			collective.BucketLabel(i), st.In.Buckets[i], st.Out.Buckets[i])
	}
	return b.String()
}

// RenderSchedReport formats the per-I/O-node disk-scheduler counters.
func RenderSchedReport(rows []ionode.SchedStats) string {
	if len(rows) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Disk scheduling (%s):\n", rows[0].Policy)
	fmt.Fprintf(&b, "  %6s %10s %10s %8s %12s %10s\n",
		"node", "grants", "reorders", "wraps", "anticipated", "queue peak")
	for i, s := range rows {
		fmt.Fprintf(&b, "  %6d %10d %10d %8d %12d %10d\n",
			i, s.Grants, s.Reorders, s.Wraps, s.Anticipated, s.QueuePeak)
	}
	return b.String()
}

// CollectiveComparison is one workload's collective-on-versus-off outcome:
// the wall clock and the physical request count under each regime, with the
// aggregation engine's own counters alongside.
type CollectiveComparison struct {
	Name  string // workload label
	Sched string // disk policy of the collective run ("" = FIFO)

	BaseWall sim.Time // wall clock, collective off
	CollWall sim.Time // wall clock, collective on
	BasePhys int64    // physical array requests, collective off
	CollPhys int64    // physical array requests, collective on

	// Stats are the aggregation counters of the collective run.
	Stats collective.Stats
}

// RequestReduction returns the physical-request collapse factor (4.0 = the
// collective run issued a quarter of the baseline's array requests).
func (c CollectiveComparison) RequestReduction() float64 {
	if c.CollPhys == 0 {
		return 0
	}
	return float64(c.BasePhys) / float64(c.CollPhys)
}

// Speedup returns the makespan ratio baseline/collective (1.3 = 30% faster
// with aggregation; below 1 = aggregation hurt).
func (c CollectiveComparison) Speedup() float64 {
	if c.CollWall == 0 {
		return 0
	}
	return float64(c.BaseWall) / float64(c.CollWall)
}

// RenderCollectiveSweep formats a collective-on-versus-off comparison table.
func RenderCollectiveSweep(title string, rows []CollectiveComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  %-22s %-8s %12s %12s %8s %10s %10s %8s %8s\n",
		"workload", "sched", "base wall", "coll wall", "speedup",
		"base phys", "coll phys", "req red", "rounds")
	for _, r := range rows {
		sched := r.Sched
		if sched == "" {
			sched = "fifo"
		}
		fmt.Fprintf(&b, "  %-22s %-8s %12s %12s %7.2fx %10d %10d %7.1fx %8d\n",
			r.Name, sched, fmtT(r.BaseWall), fmtT(r.CollWall), r.Speedup(),
			r.BasePhys, r.CollPhys, r.RequestReduction(), r.Stats.Rounds)
	}
	return b.String()
}
