package analysis

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/iotrace"
	"repro/internal/sim"
)

func TestExposuresUnionsOverlaps(t *testing.T) {
	incs := []fault.Incident{
		{Kind: fault.IONodeOutage, Start: 1 * sim.Second, End: 3 * sim.Second},
		{Kind: fault.IONodeOutage, Start: 2 * sim.Second, End: 4 * sim.Second},
		{Kind: fault.IONodeOutage, Start: 10 * sim.Second, End: 11 * sim.Second},
		{Kind: fault.DiskFailure, Start: 0, End: 5 * sim.Second},
		{Kind: fault.LatencyStorm, Start: 6 * sim.Second, End: 6 * sim.Second}, // empty
	}
	e := Exposures(incs)
	if e.Outage != 4*sim.Second {
		t.Errorf("outage exposure = %v, want 4s (3s merged + 1s)", e.Outage)
	}
	if e.Degraded != 5*sim.Second {
		t.Errorf("degraded exposure = %v, want 5s", e.Degraded)
	}
	if e.Storm != 0 {
		t.Errorf("storm exposure = %v, want 0", e.Storm)
	}
}

func TestFaultImpactsSlowdown(t *testing.T) {
	ev := func(start, dur sim.Time) iotrace.Event {
		return iotrace.Event{Start: start, End: start + dur}
	}
	events := []iotrace.Event{
		ev(0, 10*sim.Millisecond),                    // baseline
		ev(100*sim.Millisecond, 10*sim.Millisecond),  // baseline
		ev(1*sim.Second, 40*sim.Millisecond),         // inside incident
		ev(1200*sim.Millisecond, 20*sim.Millisecond), // inside incident
	}
	incs := []fault.Incident{{
		Kind: fault.LatencyStorm, Node: 2,
		Start: 900 * sim.Millisecond, End: 2 * sim.Second,
	}}
	fis := FaultImpacts(events, incs)
	if len(fis) != 1 {
		t.Fatalf("impacts = %d, want 1", len(fis))
	}
	fi := fis[0]
	if fi.Ops != 2 {
		t.Errorf("ops = %d, want 2", fi.Ops)
	}
	if fi.BaselineMean != 10*sim.Millisecond {
		t.Errorf("baseline mean = %v, want 10ms", fi.BaselineMean)
	}
	if fi.MeanLatency != 30*sim.Millisecond {
		t.Errorf("mean = %v, want 30ms", fi.MeanLatency)
	}
	if fi.Slowdown != 3.0 {
		t.Errorf("slowdown = %v, want 3.0", fi.Slowdown)
	}
}

func TestRenderResilience(t *testing.T) {
	r := ResilienceReport{
		Wall: 12 * sim.Second, Attempts: 2, Failures: 1,
		LostWork: 800 * sim.Millisecond, Checkpoints: 3,
		CkptOverhead: 120 * sim.Millisecond, Restores: 8,
		Exposure: Exposure{Outage: 1200 * sim.Millisecond},
		Impacts: []FaultImpact{{
			Incident: fault.Incident{Kind: fault.IONodeOutage, Node: 3,
				Start: 4 * sim.Second, End: 5 * sim.Second},
			Ops: 7, MeanLatency: 30 * sim.Millisecond,
			BaselineMean: 10 * sim.Millisecond, Slowdown: 3,
		}},
		Reroutes: 5,
	}
	s := RenderResilience(r)
	for _, want := range []string{
		"Resilience report:", "2 attempts, 1 failures", "lost work",
		"0.800s", "per-fault latency impact", "ionode-outage", "3.00x",
		"5 reroutes",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestRenderTradeoff(t *testing.T) {
	s := RenderTradeoff([]TradeoffPoint{
		{Interval: 0, LostWork: 6 * sim.Second, Wall: 20 * sim.Second},
		{Interval: 2, Checkpoints: 4, Overhead: 500 * sim.Millisecond,
			LostWork: 1 * sim.Second, Wall: 15 * sim.Second},
	})
	for _, want := range []string{"Checkpoint interval tradeoff", "none", "6.000s", "0.500s"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}
