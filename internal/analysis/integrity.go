package analysis

import (
	"fmt"
	"strings"

	"repro/internal/integrity"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// IntegrityReport is the end-to-end data-integrity section of a run report:
// the checksum stores' per-node counters plus their aggregate, the full
// corruption event log, the PFS client reliability layer's retry/hedge
// counters, and (for resilient runs) the checkpoint restart-verification
// outcome. Together they answer the robustness questions the healthy-path
// tables cannot: what corruption landed, what detected it, what repaired it,
// and what the defenses cost.
type IntegrityReport struct {
	PerNode []integrity.Stats
	Total   integrity.Stats
	Events  []integrity.Event

	// Reliability carries the client-side deadline/retry/hedge counters.
	Reliability pfs.ReliabilityStats

	// CkptVerifyRejects and CkptFallbacks mirror the checkpoint
	// coordinator's restart verification (zero outside resilient runs).
	CkptVerifyRejects int
	CkptFallbacks     int
}

// BuildIntegrityReport assembles the report from the PFS accessors. Returns
// nil when both the integrity layer and the client reliability layer were
// inactive (no stores, no requests — nothing to say).
func BuildIntegrityReport(per []integrity.Stats, events []integrity.Event, rel pfs.ReliabilityStats) *IntegrityReport {
	if len(per) == 0 && rel == (pfs.ReliabilityStats{}) {
		return nil
	}
	return &IntegrityReport{
		PerNode:     per,
		Total:       integrity.Aggregate(per),
		Events:      events,
		Reliability: rel,
	}
}

// ClassCount is one corruption class's lifecycle tally, derived from the
// event log.
type ClassCount struct {
	Class        integrity.Class
	Injected     int
	Detected     int
	Repaired     int // parity-repaired
	Rewritten    int // healed by a later full rewrite
	Unrepairable int // detected but never resolved
	Latent       int // never detected
}

// ByClass tallies the event log per corruption class, in class order.
func (r *IntegrityReport) ByClass() []ClassCount {
	idx := map[integrity.Class]int{}
	var out []ClassCount
	for _, ev := range r.Events {
		i, ok := idx[ev.Class]
		if !ok {
			i = len(out)
			idx[ev.Class] = i
			out = append(out, ClassCount{Class: ev.Class})
		}
		c := &out[i]
		c.Injected++
		if ev.Detected {
			c.Detected++
		}
		switch {
		case ev.Resolution == integrity.ResRepairedParity:
			c.Repaired++
		case ev.Resolution == integrity.ResRewritten:
			c.Rewritten++
		case ev.Detected:
			c.Unrepairable++
		default:
			c.Latent++
		}
	}
	return out
}

// RenderIntegrityReport formats the report as a text section in the style of
// the other run-report sections. Empty-layer reports render to "".
func RenderIntegrityReport(r *IntegrityReport) string {
	if r == nil {
		return ""
	}
	t := r.Total
	var b strings.Builder
	fmt.Fprintf(&b, "Integrity report:\n")
	fmt.Fprintf(&b, "  checksums       %d blocks tracked, %d writes checksummed\n",
		t.TrackedBlocks, t.ChecksummedWrites)
	fmt.Fprintf(&b, "  verified        %d blocks (%d B)\n", t.VerifiedBlocks, t.VerifiedBytes)
	fmt.Fprintf(&b, "  injected        %d corruptions (%d carried over restarts)\n",
		t.Injected, t.Carried)
	for _, c := range r.ByClass() {
		fmt.Fprintf(&b, "    %-17s %d injected, %d detected, %d parity-repaired, %d rewritten, %d unrepairable, %d latent\n",
			c.Class, c.Injected, c.Detected, c.Repaired, c.Rewritten, c.Unrepairable, c.Latent)
	}
	fmt.Fprintf(&b, "  detected        %d  (read %d, scrub %d, restart %d, audit %d)\n",
		t.Detected(), t.DetectedRead, t.DetectedScrub, t.DetectedRestart, t.DetectedAudit)
	fmt.Fprintf(&b, "  repaired        %d by parity (%d in end-of-run audit), %d healed by rewrite\n",
		t.RepairedParity, t.AuditRepairs, t.HealedByRewrite)
	fmt.Fprintf(&b, "  outstanding     %d corrupt blocks (%d detected-unrepairable), %d corrupt reads surfaced\n",
		t.OutstandingCorrupt, t.UnrepairableOpen, t.CorruptReads)
	if t.ScrubbedBlocks > 0 || t.ScrubPasses > 0 {
		fmt.Fprintf(&b, "  scrub           %d blocks checked, %d full passes, %d repairs, %s scrubbing\n",
			t.ScrubbedBlocks, t.ScrubPasses, t.ScrubRepairs, fmtT(t.ScrubTime))
	}
	rel := r.Reliability
	if rel.Requests > 0 {
		fmt.Fprintf(&b, "  reliability     %d requests, %d retries (%s backing off), %d deadline-exceeded\n",
			rel.Requests, rel.Retries, fmtT(rel.RetryBackoffTime), rel.DeadlineExceeded)
		fmt.Fprintf(&b, "  corrupt path    %d retried, %d rerouted to replica, %d repair writes, %d failed\n",
			rel.CorruptRetries, rel.CorruptReroutes, rel.RepairWrites, rel.CorruptFailed)
		if rel.HedgesIssued > 0 {
			fmt.Fprintf(&b, "  hedged reads    %d issued (%d B extra), %d won, %d lost\n",
				rel.HedgesIssued, rel.HedgeExtraBytes, rel.HedgeWins, rel.HedgeLosses)
		}
	}
	if r.CkptVerifyRejects > 0 || r.CkptFallbacks > 0 {
		fmt.Fprintf(&b, "  ckpt verify     %d generations rejected, %d fallbacks to older checkpoint\n",
			r.CkptVerifyRejects, r.CkptFallbacks)
	}
	return b.String()
}

// IntegrityOverheadRow is one access mode's verify-overhead measurement: the
// same synthetic workload run with the integrity layer off and on.
type IntegrityOverheadRow struct {
	Mode     string
	Op       string
	Ops      int64
	BaseMean sim.Time // mean per-op node time, integrity off
	Verified sim.Time // mean per-op node time, integrity on
	BaseWall sim.Time
	VerWall  sim.Time
}

// Overhead returns the relative per-op slowdown (0 when no baseline).
func (r IntegrityOverheadRow) Overhead() float64 {
	if r.BaseMean <= 0 {
		return 0
	}
	return float64(r.Verified)/float64(r.BaseMean) - 1
}

// RenderIntegrityOverhead formats a verify-overhead sweep as a table.
func RenderIntegrityOverhead(rows []IntegrityOverheadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Checksum verify overhead by access mode:\n")
	fmt.Fprintf(&b, "  %-10s %-6s %6s %12s %12s %9s %12s %12s\n",
		"mode", "op", "ops", "base mean", "verified", "overhead", "base wall", "ver wall")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s %-6s %6d %12s %12s %8.1f%% %12s %12s\n",
			r.Mode, r.Op, r.Ops, fmtT(r.BaseMean), fmtT(r.Verified),
			100*r.Overhead(), fmtT(r.BaseWall), fmtT(r.VerWall))
	}
	return b.String()
}

// CorruptionSweepRow is one (application, corruption class) cell of the
// detection-coverage sweep.
type CorruptionSweepRow struct {
	App          string
	Class        integrity.Class
	Injected     int
	Detected     int
	Repaired     int // parity + rewrite
	Unrepairable int // detected, reported open on the incident timeline
	Latent       int // neither detected nor resolved — must be zero
}

// RenderCorruptionSweep formats the detection-coverage sweep as a table.
func RenderCorruptionSweep(rows []CorruptionSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Corruption detection sweep:\n")
	fmt.Fprintf(&b, "  %-8s %-18s %9s %9s %9s %13s %7s\n",
		"app", "class", "injected", "detected", "repaired", "unrepairable", "latent")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %-18s %9d %9d %9d %13d %7d\n",
			r.App, r.Class, r.Injected, r.Detected, r.Repaired, r.Unrepairable, r.Latent)
	}
	return b.String()
}
