package analysis

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/iotrace"
	"repro/internal/sim"
)

func mkEvent(op iotrace.Op, file iotrace.FileID, node int, off, n int64, at sim.Time) iotrace.Event {
	return iotrace.Event{Op: op, File: file, Node: node, Offset: off, Bytes: n, Start: at, End: at + 1}
}

func findStream(t *testing.T, ps []StreamPattern, file iotrace.FileID, node int) StreamPattern {
	t.Helper()
	for _, p := range ps {
		if p.File == file && p.Node == node {
			return p
		}
	}
	t.Fatalf("stream (%d,%d) missing", file, node)
	return StreamPattern{}
}

func TestPatternsSequentialStream(t *testing.T) {
	var events []iotrace.Event
	for i := int64(0); i < 10; i++ {
		events = append(events, mkEvent(iotrace.OpRead, 1, 0, i*100, 100, sim.Time(i)*sim.Second))
	}
	ps := Patterns(events)
	p := findStream(t, ps, 1, 0)
	if p.Accesses != 10 || p.Sequential != 9 {
		t.Fatalf("pattern %+v", p)
	}
	if p.SequentialFraction() != 1.0 {
		t.Fatalf("seq fraction %f", p.SequentialFraction())
	}
	if !p.FixedSize || p.Size != 100 {
		t.Fatalf("size detection %+v", p)
	}
	// Interarrival is a steady 1 s.
	if p.Interarrival.Mean() != 1 || p.Interarrival.StdDev() != 0 {
		t.Fatalf("interarrival %+v", p.Interarrival)
	}
}

func TestPatternsConsecutiveRewrite(t *testing.T) {
	// Repeated in-place overwrites: consecutive but not sequential.
	var events []iotrace.Event
	for i := 0; i < 5; i++ {
		events = append(events, mkEvent(iotrace.OpWrite, 2, 1, 0, 512, sim.Time(i)*sim.Second))
	}
	p := findStream(t, Patterns(events), 2, 1)
	if p.Sequential != 0 || p.Consecutive != 4 {
		t.Fatalf("pattern %+v", p)
	}
}

func TestPatternsMixedSizes(t *testing.T) {
	events := []iotrace.Event{
		mkEvent(iotrace.OpRead, 3, 0, 0, 100, 0),
		mkEvent(iotrace.OpRead, 3, 0, 100, 100, sim.Second),
		mkEvent(iotrace.OpRead, 3, 0, 200, 900, 2*sim.Second),
	}
	p := findStream(t, Patterns(events), 3, 0)
	if p.FixedSize {
		t.Fatal("mixed sizes detected as fixed")
	}
	if p.Size != 100 { // most common
		t.Fatalf("dominant size %d", p.Size)
	}
}

func TestPatternsIgnoreNonDataOps(t *testing.T) {
	events := []iotrace.Event{
		mkEvent(iotrace.OpOpen, 1, 0, 0, 0, 0),
		mkEvent(iotrace.OpSeek, 1, 0, 500, 500, sim.Second),
	}
	if got := Patterns(events); len(got) != 0 {
		t.Fatalf("non-data ops produced streams: %v", got)
	}
}

// Property: Sequential <= Consecutive <= Accesses-1 for every stream.
func TestPatternsOrderingProperty(t *testing.T) {
	prop := func(offs []uint16) bool {
		var events []iotrace.Event
		for i, o := range offs {
			events = append(events, mkEvent(iotrace.OpRead, 1, 0, int64(o), 64, sim.Time(i)*sim.Second))
		}
		for _, p := range Patterns(events) {
			if p.Accesses <= 1 {
				continue
			}
			if p.Sequential > p.Consecutive || p.Consecutive > p.Accesses-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizePatterns(t *testing.T) {
	var events []iotrace.Event
	// Stream A: perfectly sequential fixed-size.
	for i := int64(0); i < 8; i++ {
		events = append(events, mkEvent(iotrace.OpRead, 1, 0, i*100, 100, sim.Time(i)*sim.Second))
	}
	// Stream B: random variable-size.
	for i, off := range []int64{900, 5, 777, 123} {
		events = append(events, mkEvent(iotrace.OpRead, 2, 0, off, int64(10+i), sim.Time(i)*sim.Second))
	}
	s := SummarizePatterns(Patterns(events))
	if s.Streams != 2 || s.SequentialStreams != 1 || s.FixedSizeStreams != 1 {
		t.Fatalf("summary %+v", s)
	}
	// 7 of 10 transitions sequential.
	if s.WeightedSequential < 0.69 || s.WeightedSequential > 0.71 {
		t.Fatalf("weighted %f", s.WeightedSequential)
	}
}

func TestCyclesBracketSessions(t *testing.T) {
	events := []iotrace.Event{
		mkEvent(iotrace.OpOpen, 1, 0, 0, 0, 0),
		mkEvent(iotrace.OpWrite, 1, 0, 0, 100, sim.Second),
		mkEvent(iotrace.OpClose, 1, 0, 0, 0, 2*sim.Second),
		// Second session on the same file.
		mkEvent(iotrace.OpOpen, 1, 0, 0, 0, 10*sim.Second),
		mkEvent(iotrace.OpRead, 1, 0, 0, 100, 11*sim.Second),
		mkEvent(iotrace.OpRead, 1, 0, 100, 100, 12*sim.Second),
		mkEvent(iotrace.OpClose, 1, 0, 0, 0, 13*sim.Second),
		// A session left open (not emitted).
		mkEvent(iotrace.OpOpen, 2, 0, 0, 0, 20*sim.Second),
	}
	cycles := Cycles(events)
	if len(cycles) != 2 {
		t.Fatalf("cycles %v", cycles)
	}
	if cycles[0].Accesses != 1 || cycles[0].Bytes != 100 {
		t.Fatalf("cycle 0 %+v", cycles[0])
	}
	if cycles[1].Accesses != 2 || cycles[1].OpenAt != 10*sim.Second {
		t.Fatalf("cycle 1 %+v", cycles[1])
	}
}

func TestCyclesNestedOpens(t *testing.T) {
	// Two nodes hold the file open with overlap: one bracketing cycle.
	events := []iotrace.Event{
		mkEvent(iotrace.OpOpen, 1, 0, 0, 0, 0),
		mkEvent(iotrace.OpOpen, 1, 1, 0, 0, sim.Second),
		mkEvent(iotrace.OpWrite, 1, 0, 0, 50, 2*sim.Second),
		mkEvent(iotrace.OpClose, 1, 0, 0, 0, 3*sim.Second),
		mkEvent(iotrace.OpClose, 1, 1, 0, 0, 9*sim.Second),
	}
	cycles := Cycles(events)
	if len(cycles) != 1 {
		t.Fatalf("cycles %v", cycles)
	}
	if cycles[0].CloseAt != 9*sim.Second+1 {
		t.Fatalf("close at %v", cycles[0].CloseAt)
	}
}

func TestCyclesUnbalancedCloseIgnored(t *testing.T) {
	events := []iotrace.Event{
		mkEvent(iotrace.OpClose, 1, 0, 0, 0, 0), // sliced trace
		mkEvent(iotrace.OpOpen, 1, 0, 0, 0, sim.Second),
		mkEvent(iotrace.OpClose, 1, 0, 0, 0, 2*sim.Second),
	}
	if got := Cycles(events); len(got) != 1 {
		t.Fatalf("cycles %v", got)
	}
}

// The next three tests cover the access regimes the I/O-node cache
// distinguishes (internal/cache mirrors this classifier's logic online):
// small sequential reads prefetch well, fixed-record interleaved writes are
// strided per stream, and random access defeats both.

func TestPatternsCacheRegimeSmallSequentialReads(t *testing.T) {
	// ESCAT-style: one node re-reading a file in 2 KB sequential requests.
	var events []iotrace.Event
	for i := int64(0); i < 40; i++ {
		events = append(events, mkEvent(iotrace.OpRead, 1, 0, i*2048, 2048, sim.Time(i)*sim.Millisecond))
	}
	p := findStream(t, Patterns(events), 1, 0)
	if p.SequentialFraction() != 1.0 {
		t.Fatalf("sequential fraction %f, want 1", p.SequentialFraction())
	}
	if !p.FixedSize || p.Size != 2048 {
		t.Fatalf("size %+v", p)
	}
	s := SummarizePatterns(Patterns(events))
	if s.SequentialStreams != 1 || s.WeightedSequential != 1 {
		t.Fatalf("summary %+v", s)
	}
}

func TestPatternsCacheRegimeInterleavedRecordWrites(t *testing.T) {
	// M_RECORD-style: 4 nodes writing fixed 4 KB records interleaved
	// node-major (node k writes records k, k+N, k+2N, ...). Per-node
	// streams are strided — zero sequential transitions — but perfectly
	// fixed-size, which is what the cache's stride predictor keys on.
	const nodes, rounds, rec = 4, 10, int64(4096)
	var events []iotrace.Event
	for r := int64(0); r < rounds; r++ {
		for n := 0; n < nodes; n++ {
			off := (r*nodes + int64(n)) * rec
			events = append(events, mkEvent(iotrace.OpWrite, 1, n, off, rec,
				sim.Time(r*nodes+int64(n))*sim.Millisecond))
		}
	}
	ps := Patterns(events)
	if len(ps) != nodes {
		t.Fatalf("%d streams, want %d", len(ps), nodes)
	}
	for _, p := range ps {
		if p.Sequential != 0 {
			t.Fatalf("node %d: interleaved stream counted %d sequential transitions", p.Node, p.Sequential)
		}
		if !p.FixedSize || p.Size != rec {
			t.Fatalf("node %d: %+v", p.Node, p)
		}
		if p.Accesses != rounds {
			t.Fatalf("node %d: %d accesses", p.Node, p.Accesses)
		}
	}
	s := SummarizePatterns(ps)
	if s.SequentialStreams != 0 || s.FixedSizeStreams != nodes {
		t.Fatalf("summary %+v", s)
	}
}

func TestPatternsCacheRegimeRandomAccess(t *testing.T) {
	// Random offsets with no adjacency: nothing sequential, nothing
	// consecutive — the regime where a cache must not prefetch.
	offs := []int64{9000, 100, 77700, 3100, 51000, 12, 64000, 8200}
	var events []iotrace.Event
	for i, off := range offs {
		events = append(events, mkEvent(iotrace.OpRead, 1, 0, off, 64, sim.Time(i)*sim.Millisecond))
	}
	p := findStream(t, Patterns(events), 1, 0)
	if p.Sequential != 0 || p.Consecutive != 0 {
		t.Fatalf("random stream classified with locality: %+v", p)
	}
	s := SummarizePatterns(Patterns(events))
	if s.SequentialStreams != 0 || s.WeightedSequential != 0 {
		t.Fatalf("summary %+v", s)
	}
}

func TestRenderPatternSummary(t *testing.T) {
	events := []iotrace.Event{
		mkEvent(iotrace.OpOpen, 1, 0, 0, 0, 0),
		mkEvent(iotrace.OpRead, 1, 0, 0, 100, sim.Second),
		mkEvent(iotrace.OpRead, 1, 0, 100, 100, 2*sim.Second),
		mkEvent(iotrace.OpClose, 1, 0, 0, 0, 3*sim.Second),
	}
	out := RenderPatternSummary(events)
	for _, want := range []string{"streams: 1", "cycles: 1", "sequential"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
