package analysis

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
)

func TestBuildCacheReport(t *testing.T) {
	if BuildCacheReport(nil) != nil {
		t.Fatal("report from no stats")
	}
	per := []cache.Stats{
		{Node: 0, Hits: 6, Misses: 2, Flushes: 1, FlushedBlocks: 3},
		{Node: 1, Hits: 2, Misses: 2, PrefetchIssued: 4, PrefetchUsed: 3, PrefetchWasted: 1},
	}
	r := BuildCacheReport(per)
	if r.Total.Hits != 8 || r.Total.Misses != 4 || r.Total.Node != -1 {
		t.Fatalf("total %+v", r.Total)
	}
	out := RenderCacheReport(r)
	for _, want := range []string{
		"Cache effectiveness:", "8 hits / 4 misses", "hit ratio 66.7%",
		"accuracy 75.0%", "per node:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if RenderCacheReport(nil) != "" {
		t.Error("nil report rendered text")
	}
}

func TestCacheComparisonReduction(t *testing.T) {
	c := CacheComparison{BaseMean: 100 * sim.Millisecond, CachedMean: 25 * sim.Millisecond}
	if got := c.Reduction(); got != 0.75 {
		t.Fatalf("reduction %f", got)
	}
	if (CacheComparison{}).Reduction() != 0 {
		t.Fatal("zero-base reduction")
	}
	out := RenderCacheSweep("Sweep:", []CacheComparison{{
		Name: "escat", Op: "Read", Ops: 38,
		BaseMean: 100 * sim.Millisecond, CachedMean: 25 * sim.Millisecond,
		HitRatio: 0.9,
	}})
	for _, want := range []string{"Sweep:", "escat", "75.0%", "90.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep render missing %q:\n%s", want, out)
		}
	}
}
