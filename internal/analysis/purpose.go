package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/iotrace"
)

// Purpose is the paper's §2 taxonomy of why high-performance applications
// perform I/O: compulsory accesses (initialization input and final output),
// checkpoints (state written for later restart or parametric reuse), and
// out-of-core staging (data too large for primary memory, written and
// reread within the run).
type Purpose int

// I/O purposes.
const (
	PurposeUnknown Purpose = iota
	PurposeCompulsoryInput
	PurposeCompulsoryOutput
	PurposeCheckpoint
	PurposeOutOfCore
)

var purposeNames = [...]string{
	"unknown", "compulsory-input", "compulsory-output", "checkpoint", "out-of-core",
}

// String names the purpose.
func (p Purpose) String() string {
	if p < 0 || int(p) >= len(purposeNames) {
		return "invalid"
	}
	return purposeNames[p]
}

// FilePurpose is the classification of one file's role in a run.
type FilePurpose struct {
	File         iotrace.FileID
	Purpose      Purpose
	BytesRead    int64
	BytesWritten int64
	Readers      int  // distinct nodes that read
	Writers      int  // distinct nodes that wrote
	RereadOwn    bool // every reader reread data it wrote itself
}

// ClassifyPurposes infers each file's §2 purpose from its observed role:
//
//   - read-only files are compulsory input;
//   - write-only files are compulsory output;
//   - files written then reread by the same nodes within the run are
//     out-of-core staging if rereads happen repeatedly (several passes) or
//     late-run single-pass reuse (checkpoint-style) otherwise;
//   - anything else stays unknown.
//
// The heuristics mirror the paper's narratives: ESCAT's quadrature files
// serve both as checkpoint ("the desire to checkpoint the quadrature data
// set for reuse in later executions") and staging; HTF's integral files are
// classic out-of-core ("they are too large to retain in memory").
func ClassifyPurposes(events []iotrace.Event) []FilePurpose {
	type fileState struct {
		bytesRead, bytesWritten int64
		readers, writers        map[int]bool
		readsPerNode            map[int]int64
		wroteThenRead           bool
		crossRead               bool             // some node read another node's data
		writeRanges             map[int][2]int64 // node -> [min,max) written
	}
	files := map[iotrace.FileID]*fileState{}
	get := func(id iotrace.FileID) *fileState {
		s := files[id]
		if s == nil {
			s = &fileState{
				readers: map[int]bool{}, writers: map[int]bool{},
				readsPerNode: map[int]int64{}, writeRanges: map[int][2]int64{},
			}
			files[id] = s
		}
		return s
	}
	for _, e := range events {
		switch e.Op {
		case iotrace.OpWrite:
			s := get(e.File)
			s.bytesWritten += e.Bytes
			s.writers[e.Node] = true
			r, ok := s.writeRanges[e.Node]
			if !ok {
				r = [2]int64{e.Offset, e.Offset + e.Bytes}
			} else {
				if e.Offset < r[0] {
					r[0] = e.Offset
				}
				if e.Offset+e.Bytes > r[1] {
					r[1] = e.Offset + e.Bytes
				}
			}
			s.writeRanges[e.Node] = r
		case iotrace.OpRead, iotrace.OpAsyncRead:
			s := get(e.File)
			s.bytesRead += e.Bytes
			s.readers[e.Node] = true
			s.readsPerNode[e.Node]++
			if len(s.writers) > 0 {
				s.wroteThenRead = true
				if r, ok := s.writeRanges[e.Node]; ok &&
					e.Offset >= r[0] && e.Offset+e.Bytes <= r[1] {
					// reread of own region
				} else {
					s.crossRead = true
				}
			}
		}
	}

	var out []FilePurpose
	for id, s := range files {
		fp := FilePurpose{
			File: id, BytesRead: s.bytesRead, BytesWritten: s.bytesWritten,
			Readers: len(s.readers), Writers: len(s.writers),
			RereadOwn: s.wroteThenRead && !s.crossRead,
		}
		switch {
		case s.bytesWritten == 0 && s.bytesRead > 0:
			fp.Purpose = PurposeCompulsoryInput
		case s.bytesRead == 0 && s.bytesWritten > 0:
			fp.Purpose = PurposeCompulsoryOutput
		case s.wroteThenRead:
			// Repeated rereads of the written data (multiple passes) are
			// out-of-core; a single reuse is checkpoint-style.
			if maxReads(s.readsPerNode) > 1 && s.bytesRead > s.bytesWritten {
				fp.Purpose = PurposeOutOfCore
			} else {
				fp.Purpose = PurposeCheckpoint
			}
		}
		out = append(out, fp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].File < out[j].File })
	return out
}

func maxReads(perNode map[int]int64) int64 {
	var max int64
	for _, n := range perNode {
		if n > max {
			max = n
		}
	}
	return max
}

// PurposeBreakdown sums traffic per purpose class.
type PurposeBreakdown struct {
	Purpose Purpose
	Files   int
	Bytes   int64 // read + written
}

// BreakdownByPurpose aggregates a classification into per-class totals, in
// purpose order.
func BreakdownByPurpose(fps []FilePurpose) []PurposeBreakdown {
	agg := map[Purpose]*PurposeBreakdown{}
	for _, fp := range fps {
		b := agg[fp.Purpose]
		if b == nil {
			b = &PurposeBreakdown{Purpose: fp.Purpose}
			agg[fp.Purpose] = b
		}
		b.Files++
		b.Bytes += fp.BytesRead + fp.BytesWritten
	}
	var out []PurposeBreakdown
	for _, b := range agg {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Purpose < out[j].Purpose })
	return out
}

// RenderPurposes formats a classification as a report section.
func RenderPurposes(fps []FilePurpose) string {
	var b strings.Builder
	fmt.Fprintf(&b, "I/O purpose classification (§2 taxonomy):\n")
	fmt.Fprintf(&b, "%4s %-18s %10s %10s %8s %8s %10s\n",
		"file", "purpose", "read", "written", "readers", "writers", "reread-own")
	for _, fp := range fps {
		fmt.Fprintf(&b, "%4d %-18s %10s %10s %8d %8d %10v\n",
			fp.File, fp.Purpose, HumanBytes(fp.BytesRead), HumanBytes(fp.BytesWritten),
			fp.Readers, fp.Writers, fp.RereadOwn)
	}
	for _, pb := range BreakdownByPurpose(fps) {
		fmt.Fprintf(&b, "  %-18s %3d files, %s\n", pb.Purpose, pb.Files, HumanBytes(pb.Bytes))
	}
	return b.String()
}
