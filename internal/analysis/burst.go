package analysis

import (
	"fmt"
	"strings"

	"repro/internal/burst"
	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// BurstReport summarizes a run's burst-tier activity: how much of the write
// burst the local logs absorbed, how well the background drain overlapped the
// application's compute phases, what compression saved, and what the tier
// still cost the application in stalls.
type BurstReport struct {
	Stats burst.Stats

	AppEnd       sim.Time // last application-visible operation's completion
	DrainBusy    sim.Time // summed drain-write service time on the PFS
	DrainOverlap sim.Time // portion of DrainBusy hidden under the application
	DrainTail    sim.Time // drain activity past the application's finish
	LastDrainEnd sim.Time // completion of the final drain write
}

// OverlapRatio returns the fraction of PFS drain time hidden under the
// application's own execution (1 = fully overlapped, the tier's ideal).
func (r *BurstReport) OverlapRatio() float64 {
	if r.DrainBusy == 0 {
		return 0
	}
	return float64(r.DrainOverlap) / float64(r.DrainBusy)
}

// StallTime returns the application-visible time the tier charged: commits
// (including backpressure) plus reads that waited for a drain.
func (r *BurstReport) StallTime() sim.Time {
	return r.Stats.CommitTime + r.Stats.ReadStallTime
}

// CompressRatio returns the achieved logical/wire ratio of the drained bytes.
func (r *BurstReport) CompressRatio() float64 {
	if r.Stats.WireBytes == 0 {
		return 1
	}
	return float64(r.Stats.DrainedBytes) / float64(r.Stats.WireBytes)
}

// BuildBurstReport derives the burst-tier report from the tier's counters and
// the run's trace (drain writes carry the pfs.PhaseBurstDrain label, so their
// overlap with the application timeline is read straight off the events).
func BuildBurstReport(st burst.Stats, events []iotrace.Event) *BurstReport {
	r := &BurstReport{Stats: st, LastDrainEnd: st.LastDrainEnd}
	for _, e := range events {
		if e.Phase == pfs.PhaseBurstDrain {
			continue
		}
		if e.End > r.AppEnd {
			r.AppEnd = e.End
		}
	}
	for _, e := range events {
		if e.Phase != pfs.PhaseBurstDrain {
			continue
		}
		d := e.End - e.Start
		r.DrainBusy += d
		if e.Start >= r.AppEnd {
			continue
		}
		ov := d
		if e.End > r.AppEnd {
			ov = r.AppEnd - e.Start
		}
		r.DrainOverlap += ov
	}
	if r.LastDrainEnd > r.AppEnd {
		r.DrainTail = r.LastDrainEnd - r.AppEnd
	}
	return r
}

// RenderBurstReport formats the burst tier's section of a run report.
func RenderBurstReport(r *BurstReport) string {
	if r == nil {
		return ""
	}
	st := r.Stats
	var b strings.Builder
	fmt.Fprintf(&b, "Burst tier:\n")
	fmt.Fprintf(&b, "  absorbed        %d records, %s  (%.1f%% of tier writes; %d bypassed, %s)\n",
		st.Committed, HumanBytes(st.CommittedBytes), 100*st.AbsorbRatio(),
		st.Bypassed, HumanBytes(st.BypassedBytes))
	fmt.Fprintf(&b, "  commit stall    %s  (%d backpressure waits, %s blocked)\n",
		fmtT(st.CommitTime), st.Backpressure, fmtT(st.BackpressureStall))
	fmt.Fprintf(&b, "  drained         %d records, %s logical -> %s wire  (%.2fx compression, %s saved)\n",
		st.Drained, HumanBytes(st.DrainedBytes), HumanBytes(st.WireBytes),
		r.CompressRatio(), HumanBytes(st.CompressSavedBytes()))
	fmt.Fprintf(&b, "  drain overlap   %s of %s hidden under the application (%.1f%%), %s tail\n",
		fmtT(r.DrainOverlap), fmtT(r.DrainBusy), 100*r.OverlapRatio(), fmtT(r.DrainTail))
	fmt.Fprintf(&b, "  read stalls     %d waits, %s\n", st.ReadStalls, fmtT(st.ReadStallTime))
	if st.UndrainedRecords > 0 {
		fmt.Fprintf(&b, "  undrained       %d records, %s still in node logs\n",
			st.UndrainedRecords, HumanBytes(st.UndrainedBytes))
	}
	if st.DrainRetries+st.DrainFails+st.VerifyFails > 0 {
		fmt.Fprintf(&b, "  drain errors    %d retries, %d dropped, %d checksum rejects\n",
			st.DrainRetries, st.DrainFails, st.VerifyFails)
	}
	return b.String()
}

// BurstComparison is one application's burst-on-versus-off outcome at equal
// configuration: end-to-end makespan and checkpoint stall time under each
// regime, with the tier's own counters alongside.
type BurstComparison struct {
	Name string

	DirectWall  sim.Time // makespan, burst off
	BurstWall   sim.Time // makespan (application finish), burst on
	DirectStall sim.Time // checkpoint overhead, burst off
	BurstStall  sim.Time // checkpoint overhead, burst on

	// Report is the burst run's tier report.
	Report *BurstReport
}

// Speedup returns the makespan ratio direct/burst.
func (c BurstComparison) Speedup() float64 {
	if c.BurstWall == 0 {
		return 0
	}
	return float64(c.DirectWall) / float64(c.BurstWall)
}

// StallReduction returns the checkpoint-stall collapse factor direct/burst.
func (c BurstComparison) StallReduction() float64 {
	if c.BurstStall == 0 {
		return 0
	}
	return float64(c.DirectStall) / float64(c.BurstStall)
}

// RenderBurstSweep formats a burst-on-versus-off comparison table.
func RenderBurstSweep(title string, rows []BurstComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  %-10s %12s %12s %8s %12s %12s %10s %9s %10s\n",
		"app", "direct wall", "burst wall", "speedup",
		"direct stall", "burst stall", "stall red", "absorb", "saved")
	for _, r := range rows {
		absorb, saved := 0.0, int64(0)
		if r.Report != nil {
			absorb = r.Report.Stats.AbsorbRatio()
			saved = r.Report.Stats.CompressSavedBytes()
		}
		red := "-"
		if r.DirectStall > 0 && r.BurstStall > 0 {
			red = fmt.Sprintf("%.1fx", r.StallReduction())
		}
		fmt.Fprintf(&b, "  %-10s %12s %12s %7.2fx %12s %12s %10s %8.1f%% %10s\n",
			r.Name, fmtT(r.DirectWall), fmtT(r.BurstWall), r.Speedup(),
			fmtT(r.DirectStall), fmtT(r.BurstStall), red,
			100*absorb, HumanBytes(saved))
	}
	return b.String()
}
