package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/iotrace"
	"repro/internal/sim"
	"repro/internal/stats"
)

// StreamPattern summarizes one access stream (one node's accesses to one
// file) with the metrics the characterization literature the paper builds on
// uses (Miller & Katz; Kotz & Nieuwejaar; §9-§10): sequentiality and
// consecutiveness fractions, request-size regularity, and interarrival
// structure.
type StreamPattern struct {
	File iotrace.FileID
	Node int

	Accesses int64
	Bytes    int64

	// Sequential counts accesses that start exactly where the previous
	// one ended; Consecutive additionally includes accesses that start
	// where a previous access started (overwrite/reread in place).
	Sequential  int64
	Consecutive int64

	// FixedSize reports whether all accesses share one size, and Size is
	// that size (the most common size otherwise).
	FixedSize bool
	Size      int64

	// Interarrival summarizes the time between consecutive access starts.
	Interarrival stats.Summary
}

// SequentialFraction is the fraction of transitions that were strictly
// sequential (0 for single-access streams).
func (s StreamPattern) SequentialFraction() float64 {
	if s.Accesses <= 1 {
		return 0
	}
	return float64(s.Sequential) / float64(s.Accesses-1)
}

// Patterns computes per-stream pattern statistics over a trace's
// data-moving operations, ordered by (file, node).
func Patterns(events []iotrace.Event) []StreamPattern {
	type key struct {
		file iotrace.FileID
		node int
	}
	type state struct {
		p         *StreamPattern
		lastEnd   int64
		lastStart int64
		lastTime  sim.Time
		started   bool
		sizes     map[int64]int64
	}
	streams := map[key]*state{}
	for _, e := range events {
		if !e.Op.Moves() {
			continue
		}
		k := key{e.File, e.Node}
		st := streams[k]
		if st == nil {
			st = &state{
				p:     &StreamPattern{File: e.File, Node: e.Node},
				sizes: map[int64]int64{},
			}
			streams[k] = st
		}
		p := st.p
		p.Accesses++
		p.Bytes += e.Bytes
		st.sizes[e.Bytes]++
		if st.started {
			if e.Offset == st.lastEnd {
				p.Sequential++
				p.Consecutive++
			} else if e.Offset == st.lastStart {
				p.Consecutive++
			}
			p.Interarrival.Add((e.Start - st.lastTime).Seconds())
		}
		st.started = true
		st.lastStart = e.Offset
		st.lastEnd = e.Offset + e.Bytes
		st.lastTime = e.Start
	}

	out := make([]StreamPattern, 0, len(streams))
	for _, st := range streams {
		p := st.p
		var best, bestCount int64
		for size, count := range st.sizes {
			if count > bestCount || (count == bestCount && size > best) {
				best, bestCount = size, count
			}
		}
		p.Size = best
		p.FixedSize = len(st.sizes) == 1
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// PatternSummary aggregates stream patterns across a whole trace — the
// paper's concluding characterization (§10): "the majority of the request
// patterns are sequential... requests tend to be of fixed size".
type PatternSummary struct {
	Streams            int
	SequentialStreams  int // streams with >= 90% sequential transitions
	FixedSizeStreams   int
	WeightedSequential float64 // access-weighted sequential fraction
}

// SummarizePatterns aggregates per-stream patterns.
func SummarizePatterns(patterns []StreamPattern) PatternSummary {
	var s PatternSummary
	var seqAccesses, transitions int64
	for _, p := range patterns {
		s.Streams++
		if p.Accesses > 1 && p.SequentialFraction() >= 0.9 {
			s.SequentialStreams++
		}
		if p.FixedSize {
			s.FixedSizeStreams++
		}
		seqAccesses += p.Sequential
		if p.Accesses > 1 {
			transitions += p.Accesses - 1
		}
	}
	if transitions > 0 {
		s.WeightedSequential = float64(seqAccesses) / float64(transitions)
	}
	return s
}

// Cycle is one open-access-close session on a file — §10's "cyclic
// behavior, with repeated patterns of file open, access, and close".
type Cycle struct {
	File     iotrace.FileID
	OpenAt   sim.Time
	CloseAt  sim.Time
	Accesses int64
	Bytes    int64
}

// Cycles extracts open-access-close sessions per file from a trace. A file
// opened by many nodes yields one cycle per bracketing open/close depth
// transition (sessions while the file has at least one opener).
func Cycles(events []iotrace.Event) []Cycle {
	type state struct {
		depth int
		cur   *Cycle
	}
	files := map[iotrace.FileID]*state{}
	var out []Cycle
	for _, e := range events {
		st := files[e.File]
		if st == nil {
			st = &state{}
			files[e.File] = st
		}
		switch e.Op {
		case iotrace.OpOpen:
			if st.depth == 0 {
				st.cur = &Cycle{File: e.File, OpenAt: e.Start}
			}
			st.depth++
		case iotrace.OpClose:
			if st.depth > 0 {
				st.depth--
				if st.depth == 0 && st.cur != nil {
					st.cur.CloseAt = e.End
					out = append(out, *st.cur)
					st.cur = nil
				}
			}
		default:
			if st.cur != nil && e.Op.Moves() {
				st.cur.Accesses++
				st.cur.Bytes += e.Bytes
			}
		}
	}
	// Sessions still open at trace end are not emitted (no close bracket).
	sort.Slice(out, func(i, j int) bool {
		if out[i].OpenAt != out[j].OpenAt {
			return out[i].OpenAt < out[j].OpenAt
		}
		return out[i].File < out[j].File
	})
	return out
}

// RenderPatternSummary formats the trace-wide pattern conclusions.
func RenderPatternSummary(events []iotrace.Event) string {
	patterns := Patterns(events)
	s := SummarizePatterns(patterns)
	cycles := Cycles(events)
	var b strings.Builder
	fmt.Fprintf(&b, "Access-pattern summary (§10):\n")
	fmt.Fprintf(&b, "  streams: %d, sequential (>=90%%): %d, fixed-size: %d\n",
		s.Streams, s.SequentialStreams, s.FixedSizeStreams)
	fmt.Fprintf(&b, "  access-weighted sequential fraction: %.1f%%\n", 100*s.WeightedSequential)
	fmt.Fprintf(&b, "  open-access-close cycles: %d\n", len(cycles))
	if len(cycles) > 0 {
		var acc stats.Summary
		for _, c := range cycles {
			acc.Add((c.CloseAt - c.OpenAt).Seconds())
		}
		fmt.Fprintf(&b, "  cycle duration: mean %.2fs, min %.2fs, max %.2fs\n",
			acc.Mean(), acc.Min(), acc.Max())
	}
	return b.String()
}
