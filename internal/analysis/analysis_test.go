package analysis

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/iotrace"
	"repro/internal/pablo"
	"repro/internal/sim"
)

func ev(op iotrace.Op, file iotrace.FileID, bytes int64, start, end sim.Time) iotrace.Event {
	return iotrace.Event{Op: op, File: file, Bytes: bytes, Start: start, End: end}
}

func sampleTrace() []iotrace.Event {
	return []iotrace.Event{
		ev(iotrace.OpOpen, 1, 0, 0, sim.Second),
		ev(iotrace.OpRead, 1, 1000, 2*sim.Second, 3*sim.Second),
		ev(iotrace.OpRead, 1, 500_000, 3*sim.Second, 6*sim.Second),
		ev(iotrace.OpWrite, 2, 2048, 7*sim.Second, 9*sim.Second),
		ev(iotrace.OpWrite, 2, 2048, 9*sim.Second, 10*sim.Second),
		ev(iotrace.OpSeek, 2, 4096, 10*sim.Second, 11*sim.Second),
		ev(iotrace.OpClose, 1, 0, 11*sim.Second, 12*sim.Second),
	}
}

func TestSummarizeCountsVolumesTimes(t *testing.T) {
	s := Summarize(sampleTrace())
	if s.Total.Count != 7 {
		t.Fatalf("total count %d", s.Total.Count)
	}
	// Volume = read 501000 + write 4096; seek distance is listed on the
	// seek row but (as in the paper) excluded from the All I/O total.
	if s.Total.Volume != 501000+4096 {
		t.Fatalf("total volume %d", s.Total.Volume)
	}
	if sk := s.Row("Seek"); sk.Volume != 4096 || !sk.HasVolume {
		t.Fatalf("seek row %+v", sk)
	}
	if s.Total.NodeTime != 10*sim.Second {
		t.Fatalf("total time %v", s.Total.NodeTime)
	}
	r := s.Row("Read")
	if r == nil || r.Count != 2 || r.Volume != 501000 || r.NodeTime != 4*sim.Second {
		t.Fatalf("read row %+v", r)
	}
	if pct := r.Pct; pct < 39.9 || pct > 40.1 {
		t.Fatalf("read pct %f, want 40", pct)
	}
	w := s.Row("Write")
	if w == nil || w.Count != 2 || w.Volume != 4096 {
		t.Fatalf("write row %+v", w)
	}
	if s.Row("Open").HasVolume {
		t.Fatal("open row should have no volume")
	}
	if s.Row("I/O Wait") != nil {
		t.Fatal("absent op class produced a row")
	}
}

// Property: row percentages sum to ~100 whenever any time was spent.
func TestSummaryPctSumsProperty(t *testing.T) {
	prop := func(durs []uint16) bool {
		if len(durs) == 0 {
			return true
		}
		var events []iotrace.Event
		var cur sim.Time
		for i, d := range durs {
			op := paperRowOrder[i%len(paperRowOrder)]
			events = append(events, ev(op, 1, 100, cur, cur+sim.Time(d)+1))
			cur += sim.Time(d) + 1
		}
		s := Summarize(events)
		var sum float64
		for _, r := range s.Rows {
			sum += r.Pct
		}
		return sum > 99.9 && sum < 100.1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryRender(t *testing.T) {
	out := Summarize(sampleTrace()).Render("Table X")
	for _, want := range []string{"Table X", "All I/O", "Read", "Write", "Seek", "Open", "Close", "% I/O Time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Open/Close have no volume: rendered as "-".
	if !strings.Contains(out, "-") {
		t.Fatalf("render missing '-' volume:\n%s", out)
	}
}

func TestSizesMergeAsyncReads(t *testing.T) {
	events := []iotrace.Event{
		ev(iotrace.OpRead, 1, 1000, 0, 1),
		ev(iotrace.OpAsyncRead, 1, 3_000_000, 0, 1),
		ev(iotrace.OpWrite, 1, 70_000, 0, 1),
		ev(iotrace.OpIOWait, 1, 0, 0, 1), // not a sized request
	}
	st := Sizes(events)
	if st.Read.Total() != 2 {
		t.Fatalf("read total %d", st.Read.Total())
	}
	rb := st.Read.Buckets()
	if rb[0] != 1 || rb[3] != 1 {
		t.Fatalf("read buckets %v", rb)
	}
	wb := st.Write.Buckets()
	if wb[2] != 1 || st.Write.Total() != 1 {
		t.Fatalf("write buckets %v", wb)
	}
	out := st.Render("Sizes")
	if !strings.Contains(out, "< 4 KB") || !strings.Contains(out, ">= 256 KB") {
		t.Fatalf("size render:\n%s", out)
	}
}

func TestOpTimelineOrderingAndFiltering(t *testing.T) {
	events := []iotrace.Event{
		ev(iotrace.OpWrite, 1, 10, 5*sim.Second, 6*sim.Second),
		ev(iotrace.OpRead, 1, 20, 2*sim.Second, 3*sim.Second),
		ev(iotrace.OpSeek, 1, 0, sim.Second, 2*sim.Second),
	}
	pts := ReadTimeline(events)
	if len(pts) != 1 || pts[0].Y != 20 {
		t.Fatalf("read timeline %v", pts)
	}
	both := OpTimeline(events, iotrace.OpRead, iotrace.OpWrite)
	if len(both) != 2 || both[0].T != 2*sim.Second || both[1].T != 5*sim.Second {
		t.Fatalf("timeline not time-ordered: %v", both)
	}
}

func TestFileTimelineUsesFileAsY(t *testing.T) {
	events := []iotrace.Event{
		ev(iotrace.OpRead, 9, 10, 0, 1),
		ev(iotrace.OpWrite, 3, 10, 2, 3),
		ev(iotrace.OpOpen, 5, 0, 4, 5),
	}
	pts := FileTimeline(events)
	if len(pts) != 2 {
		t.Fatalf("file timeline %v", pts)
	}
	if pts[0].Y != 9 || pts[1].Y != 3 {
		t.Fatalf("file ids %v", pts)
	}
}

func TestFilters(t *testing.T) {
	events := []iotrace.Event{
		{Op: iotrace.OpRead, Phase: "a", Start: 1 * sim.Second},
		{Op: iotrace.OpWrite, Phase: "b", Start: 5 * sim.Second},
		{Op: iotrace.OpRead, Phase: "b", Start: 9 * sim.Second},
	}
	if got := FilterPhase(events, "b"); len(got) != 2 {
		t.Fatalf("phase filter %v", got)
	}
	if got := FilterTime(events, 2*sim.Second, 9*sim.Second); len(got) != 1 {
		t.Fatalf("time filter %v", got)
	}
	if got := FilterOps(events, iotrace.OpRead); len(got) != 2 {
		t.Fatalf("op filter %v", got)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	pts := []Point{{T: sim.Second + sim.Time(500000), Y: 42, Node: 3, File: 7, Op: iotrace.OpWrite}}
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.HasPrefix(got, "time_s,y,node,file,op\n") {
		t.Fatalf("csv header: %q", got)
	}
	if !strings.Contains(got, "1.500000,42,3,7,Write") {
		t.Fatalf("csv row: %q", got)
	}
}

func TestBurstsClusterByGap(t *testing.T) {
	mk := func(secs ...int) []Point {
		var pts []Point
		for _, s := range secs {
			pts = append(pts, Point{T: sim.Time(s) * sim.Second, Y: 1})
		}
		return pts
	}
	// Three clusters: {0,1,2}, {50,51}, {120}.
	bursts := Bursts(mk(0, 1, 2, 50, 51, 120), 10*sim.Second)
	if len(bursts) != 3 {
		t.Fatalf("bursts %v", bursts)
	}
	if bursts[0].Count != 3 || bursts[1].Count != 2 || bursts[2].Count != 1 {
		t.Fatalf("burst counts %v", bursts)
	}
	sp := BurstSpacings(bursts)
	if len(sp) != 2 || sp[0] != 50*sim.Second || sp[1] != 70*sim.Second {
		t.Fatalf("spacings %v", sp)
	}
}

// Property: bursts partition the points — counts sum to len(pts).
func TestBurstsPartitionProperty(t *testing.T) {
	prop := func(gaps []uint8) bool {
		var pts []Point
		var cur sim.Time
		for _, g := range gaps {
			cur += sim.Time(g) * sim.Second
			pts = append(pts, Point{T: cur, Y: 1})
		}
		total := 0
		for _, b := range Bursts(pts, 5*sim.Second) {
			total += b.Count
		}
		return total == len(pts)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestThroughput(t *testing.T) {
	pts := []Point{{Y: 5 << 20}, {Y: 5 << 20}}
	if got := Throughput(pts, sim.Second); got != 10*(1<<20) {
		t.Fatalf("throughput %f", got)
	}
	if Throughput(pts, 0) != 0 {
		t.Fatal("zero span should give 0")
	}
}

func TestRenderScatterMarks(t *testing.T) {
	pts := []Point{
		{T: 0, Y: 100, Op: iotrace.OpRead},
		{T: 10 * sim.Second, Y: 1 << 20, Op: iotrace.OpWrite},
	}
	out := RenderScatter(pts, PlotOptions{Title: "Fig", Width: 40, Height: 10, LogY: true})
	if !strings.Contains(out, "Fig") || !strings.Contains(out, "o") || !strings.Contains(out, "+") {
		t.Fatalf("scatter:\n%s", out)
	}
	empty := RenderScatter(nil, PlotOptions{})
	if !strings.Contains(empty, "no data") {
		t.Fatalf("empty scatter: %q", empty)
	}
}

func TestRenderScatterOverlapBecomesStar(t *testing.T) {
	pts := []Point{
		{T: 0, Y: 100, Op: iotrace.OpRead},
		{T: 0, Y: 100, Op: iotrace.OpWrite},
	}
	out := RenderScatter(pts, PlotOptions{Width: 10, Height: 5})
	if !strings.Contains(out, "*") {
		t.Fatalf("overlap mark missing:\n%s", out)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:        "512B",
		2048:       "2.0KB",
		3 << 20:    "3.0MB",
		5 << 30:    "5.0GB",
		983_040:    "960.0KB",
		64 * 1024:  "64.0KB",
		256 * 1024: "256.0KB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestMakespan(t *testing.T) {
	events := []iotrace.Event{
		ev(iotrace.OpRead, 1, 0, 5*sim.Second, 7*sim.Second),
		ev(iotrace.OpRead, 1, 0, 2*sim.Second, 3*sim.Second),
	}
	if got := Makespan(events); got != 5*sim.Second {
		t.Fatalf("makespan %v", got)
	}
	if Makespan(nil) != 0 {
		t.Fatal("empty makespan")
	}
}

func TestRequestStats(t *testing.T) {
	events := []iotrace.Event{
		ev(iotrace.OpRead, 1, 100, 0, sim.Second),
		ev(iotrace.OpRead, 1, 300, 0, 3*sim.Second),
		ev(iotrace.OpWrite, 1, 999, 0, sim.Second),
	}
	size, dur := RequestStats(events, iotrace.OpRead)
	if size.N() != 2 || size.Mean() != 200 {
		t.Fatalf("size stats %+v", size)
	}
	if dur.Mean() != 2 {
		t.Fatalf("duration mean %f", dur.Mean())
	}
}

func TestRenderSVGStructure(t *testing.T) {
	pts := []Point{
		{T: 0, Y: 100, Op: iotrace.OpRead},
		{T: 10 * sim.Second, Y: 1 << 20, Op: iotrace.OpWrite},
		{T: 5 * sim.Second, Y: 2048, Op: iotrace.OpAsyncRead},
	}
	out := RenderSVG(pts, SVGOptions{Title: "Fig <4> & more", LogY: true, YLabel: "size", XLabel: "time"})
	for _, want := range []string{
		"<svg", "</svg>", "Fig &lt;4&gt; &amp; more", "read", "write",
		`stroke="#c0392b"`, `stroke="#2c5f8a"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// Well-formedness cheap check: every < has a matching >.
	if strings.Count(out, "<") != strings.Count(out, ">") {
		t.Fatal("unbalanced angle brackets")
	}
}

func TestRenderSVGEmpty(t *testing.T) {
	out := RenderSVG(nil, SVGOptions{})
	if !strings.Contains(out, "no data") || !strings.Contains(out, "</svg>") {
		t.Fatalf("empty svg: %q", out)
	}
}

func TestEscapeXML(t *testing.T) {
	if got := escapeXML(`a<b>&"c"'d'`); got != "a&lt;b&gt;&amp;&quot;c&quot;&apos;d&apos;" {
		t.Fatalf("escape %q", got)
	}
}

func TestRenderActivityStrip(t *testing.T) {
	// A read-heavy window followed by a write-heavy one.
	w := pablo.NewWindowReducer(sim.Second)
	w.Reduce(iotrace.Event{Op: iotrace.OpRead, Bytes: 1 << 20, Start: 0, End: 1})
	w.Reduce(iotrace.Event{Op: iotrace.OpWrite, Bytes: 2 << 20, Start: 3 * sim.Second, End: 3*sim.Second + 1})
	out := RenderActivity(w, 40)
	for _, want := range []string{"I/O activity", "R", "W", "peak window"} {
		if !strings.Contains(out, want) {
			t.Fatalf("activity missing %q:\n%s", want, out)
		}
	}
	// Empty reducer.
	empty := RenderActivity(pablo.NewWindowReducer(sim.Second), 40)
	if !strings.Contains(empty, "no activity") {
		t.Fatalf("empty activity: %q", empty)
	}
}
