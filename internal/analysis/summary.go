// Package analysis computes the paper's tables and figures from captured I/O
// event traces: operation summaries (Tables 1, 3, 5), request-size bucket
// tables (Tables 2, 4, 6), operation timelines (Figures 2-4, 6-7, 9-14),
// file-access timelines (Figures 5, 8, 15-17), plus the clustering and
// throughput analyses quoted in the running text.
package analysis

import (
	"fmt"
	"strings"

	"repro/internal/iotrace"
	"repro/internal/sim"
	"repro/internal/stats"
)

// OpRow is one row of an operation-summary table.
type OpRow struct {
	Label     string
	Count     int64
	Volume    int64 // bytes moved (reads/writes) or distance (seeks)
	HasVolume bool
	NodeTime  sim.Time // durations summed over all nodes
	Pct       float64  // share of total I/O node time, percent
}

// OpSummary is a full operation-summary table: the "All I/O" totals row plus
// one row per operation class present in the trace, in the paper's row order.
type OpSummary struct {
	Total OpRow
	Rows  []OpRow
}

// paperRowOrder is the order the paper lists operation rows in.
var paperRowOrder = []iotrace.Op{
	iotrace.OpRead,
	iotrace.OpAsyncRead,
	iotrace.OpIOWait,
	iotrace.OpWrite,
	iotrace.OpSeek,
	iotrace.OpOpen,
	iotrace.OpClose,
	iotrace.OpLsize,
	iotrace.OpFlush,
}

// Summarize computes an operation summary over a trace. Node time is the sum
// of per-operation durations across all nodes, exactly as the paper's "Node
// Time" columns (which exceed wall-clock time under parallel I/O).
func Summarize(events []iotrace.Event) OpSummary {
	var count [iotrace.NumOps]int64
	var volume [iotrace.NumOps]int64
	var dur [iotrace.NumOps]sim.Time
	for _, e := range events {
		count[e.Op]++
		dur[e.Op] += e.Duration()
		if e.Op.Moves() || e.Op == iotrace.OpSeek {
			volume[e.Op] += e.Bytes
		}
	}
	var s OpSummary
	var totalTime sim.Time
	var totalCount, totalVol int64
	for _, op := range paperRowOrder {
		totalTime += dur[op]
		totalCount += count[op]
		if op.Moves() {
			// The paper's "All I/O" volume sums data moved; seek rows list
			// distance but it does not contribute to the total.
			totalVol += volume[op]
		}
	}
	for _, op := range paperRowOrder {
		if count[op] == 0 {
			continue
		}
		pct := 0.0
		if totalTime > 0 {
			pct = 100 * float64(dur[op]) / float64(totalTime)
		}
		s.Rows = append(s.Rows, OpRow{
			Label:     op.String(),
			Count:     count[op],
			Volume:    volume[op],
			HasVolume: op.Moves() || op == iotrace.OpSeek,
			NodeTime:  dur[op],
			Pct:       pct,
		})
	}
	s.Total = OpRow{
		Label: "All I/O", Count: totalCount, Volume: totalVol, HasVolume: true,
		NodeTime: totalTime, Pct: 100,
	}
	return s
}

// Row returns the row with the given label (e.g. "Read"), or nil.
func (s OpSummary) Row(label string) *OpRow {
	for i := range s.Rows {
		if s.Rows[i].Label == label {
			return &s.Rows[i]
		}
	}
	return nil
}

// Render formats the summary in the paper's table layout.
func (s OpSummary) Render(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %12s %16s %14s %10s\n", "Operation", "Count", "Volume (Bytes)", "Time (s)", "% I/O Time")
	writeRow := func(r OpRow) {
		vol := "-"
		if r.HasVolume {
			vol = fmt.Sprintf("%d", r.Volume)
		}
		fmt.Fprintf(&b, "%-12s %12d %16s %14.2f %10.2f\n",
			r.Label, r.Count, vol, r.NodeTime.Seconds(), r.Pct)
	}
	writeRow(s.Total)
	for _, r := range s.Rows {
		writeRow(r)
	}
	return b.String()
}

// SizeTable buckets read and write request sizes into the paper's four size
// classes. As in the paper's tables, asynchronous reads count as reads.
type SizeTable struct {
	Read  *stats.Histogram
	Write *stats.Histogram
}

// Sizes computes the request-size table for a trace.
func Sizes(events []iotrace.Event) SizeTable {
	t := SizeTable{Read: stats.NewPaperHistogram(), Write: stats.NewPaperHistogram()}
	for _, e := range events {
		switch e.Op {
		case iotrace.OpRead, iotrace.OpAsyncRead:
			t.Read.Add(e.Bytes)
		case iotrace.OpWrite:
			t.Write.Add(e.Bytes)
		}
	}
	return t
}

// Render formats the size table in the paper's layout.
func (t SizeTable) Render(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s", "Operation")
	for _, l := range stats.PaperBucketLabels {
		fmt.Fprintf(&b, " %10s", l)
	}
	b.WriteByte('\n')
	row := func(name string, h *stats.Histogram) {
		fmt.Fprintf(&b, "%-10s", name)
		for _, c := range h.Buckets() {
			fmt.Fprintf(&b, " %10d", c)
		}
		b.WriteByte('\n')
	}
	row("Read", t.Read)
	row("Write", t.Write)
	return b.String()
}

// RequestStats returns descriptive statistics of request sizes and durations
// for one operation class — the paper's "general input/output statistics
// computed off-line from event traces" (§3.1).
func RequestStats(events []iotrace.Event, op iotrace.Op) (size, duration stats.Summary) {
	for _, e := range events {
		if e.Op != op {
			continue
		}
		size.Add(float64(e.Bytes))
		duration.Add(e.Duration().Seconds())
	}
	return size, duration
}
