package analysis

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/iotrace"
)

// SVGOptions configures the SVG scatter renderer.
type SVGOptions struct {
	Title  string
	Width  int  // pixel width (default 720)
	Height int  // pixel height (default 420)
	LogY   bool // logarithmic y axis (request sizes)
	YLabel string
	XLabel string
}

// RenderSVG draws a timeline as a standalone SVG document in the visual
// vocabulary of the paper's figures: diamonds for reads, crosses for writes,
// time on the x axis. The output is self-contained (no external assets) and
// renders in any browser.
func RenderSVG(pts []Point, opts SVGOptions) string {
	if opts.Width <= 0 {
		opts.Width = 720
	}
	if opts.Height <= 0 {
		opts.Height = 420
	}
	const (
		marginL = 70
		marginR = 20
		marginT = 40
		marginB = 50
	)
	plotW := float64(opts.Width - marginL - marginR)
	plotH := float64(opts.Height - marginT - marginB)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.Width, opts.Height, opts.Width, opts.Height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", opts.Width, opts.Height)
	if opts.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
			marginL, escapeXML(opts.Title))
	}
	// Plot frame.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="black"/>`+"\n",
		marginL, marginT, plotW, plotH)

	if len(pts) == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="13">(no data)</text>`+"\n",
			marginL+10, marginT+30)
		b.WriteString("</svg>\n")
		return b.String()
	}

	tMin, tMax := pts[0].T, pts[0].T
	yMin, yMax := pts[0].Y, pts[0].Y
	for _, p := range pts {
		if p.T < tMin {
			tMin = p.T
		}
		if p.T > tMax {
			tMax = p.T
		}
		if p.Y < yMin {
			yMin = p.Y
		}
		if p.Y > yMax {
			yMax = p.Y
		}
	}
	if tMax == tMin {
		tMax = tMin + 1
	}
	yPos := func(y int64) float64 {
		var frac float64
		if opts.LogY {
			lo := math.Log10(math.Max(1, float64(yMin)))
			hi := math.Log10(math.Max(1, float64(yMax)))
			if hi > lo {
				frac = (math.Log10(math.Max(1, float64(y))) - lo) / (hi - lo)
			}
		} else if yMax > yMin {
			frac = float64(y-yMin) / float64(yMax-yMin)
		}
		return float64(marginT) + plotH*(1-frac)
	}
	xPos := func(t int64) float64 {
		return float64(marginL) + plotW*float64(t-int64(tMin))/float64(tMax-tMin)
	}

	// Axis labels: min/mid/max ticks.
	tick := func(x, y float64, label, anchor string) {
		fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" font-family="sans-serif" font-size="11" text-anchor="%s">%s</text>`+"\n",
			x, y, anchor, escapeXML(label))
	}
	tick(float64(marginL), float64(opts.Height-marginB+16), fmt.Sprintf("%.0fs", tMin.Seconds()), "middle")
	tick(float64(marginL)+plotW, float64(opts.Height-marginB+16), fmt.Sprintf("%.0fs", tMax.Seconds()), "middle")
	tick(float64(marginL)-6, float64(marginT)+plotH, humanBytes(float64(yMin)), "end")
	tick(float64(marginL)-6, float64(marginT)+10, humanBytes(float64(yMax)), "end")
	if opts.XLabel != "" {
		tick(float64(marginL)+plotW/2, float64(opts.Height-marginB+32), opts.XLabel, "middle")
	}
	if opts.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%.0f" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 14 %.0f)">%s</text>`+"\n",
			float64(marginT)+plotH/2, float64(marginT)+plotH/2, escapeXML(opts.YLabel))
	}

	// Marks: diamonds for reads, crosses for writes (the paper's legend).
	for _, p := range pts {
		x, y := xPos(int64(p.T)), yPos(p.Y)
		switch p.Op {
		case iotrace.OpWrite:
			fmt.Fprintf(&b, `<path d="M%.1f %.1f l3 3 m0 -3 l-3 3" stroke="#c0392b" stroke-width="1" transform="translate(-1.5,-1.5)"/>`+"\n", x, y)
		default: // reads and async reads
			fmt.Fprintf(&b, `<path d="M%.1f %.1f m0 -3 l3 3 l-3 3 l-3 -3 z" fill="none" stroke="#2c5f8a" stroke-width="1"/>`+"\n", x, y)
		}
	}

	// Legend.
	lx := float64(marginL) + 6
	fmt.Fprintf(&b, `<path d="M%.1f %.1f m0 -3 l3 3 l-3 3 l-3 -3 z" fill="none" stroke="#2c5f8a"/>`+"\n", lx, float64(marginT)-8)
	tick(lx+8, float64(marginT)-4, "read", "start")
	fmt.Fprintf(&b, `<path d="M%.1f %.1f l3 3 m0 -3 l-3 3" stroke="#c0392b" transform="translate(-1.5,-1.5)"/>`+"\n", lx+50, float64(marginT)-8)
	tick(lx+58, float64(marginT)-4, "write", "start")

	b.WriteString("</svg>\n")
	return b.String()
}

// escapeXML escapes the five XML special characters.
func escapeXML(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;",
	)
	return r.Replace(s)
}
