package analysis

import (
	"fmt"
	"strings"

	"repro/internal/iotrace"
	"repro/internal/pablo"
)

// RenderActivity draws the Pablo time-window reduction as an intensity
// strip: one column per window, scaled by the bytes moved in it, with 'R'
// marking read-dominated windows, 'W' write-dominated ones, and '.' idle
// windows. It is the textual analogue of sweeping a cursor across the
// paper's timeline figures.
func RenderActivity(w *pablo.WindowReducer, width int) string {
	if width <= 0 {
		width = 72
	}
	windows := w.Windows()
	var b strings.Builder
	fmt.Fprintf(&b, "I/O activity by %s window:\n", w.Width())
	if len(windows) == 0 {
		b.WriteString("(no activity)\n")
		return b.String()
	}
	last := windows[len(windows)-1].Index
	// Bucket windows onto the strip.
	type cell struct{ read, write int64 }
	cells := make([]cell, width)
	perCell := float64(last+1) / float64(width)
	if perCell < 1 {
		perCell = 1
	}
	for _, win := range windows {
		idx := int(float64(win.Index) / perCell)
		if idx >= width {
			idx = width - 1
		}
		cells[idx].read += win.Bytes[iotrace.OpRead] + win.Bytes[iotrace.OpAsyncRead]
		cells[idx].write += win.Bytes[iotrace.OpWrite]
	}
	var peak int64
	for _, c := range cells {
		if t := c.read + c.write; t > peak {
			peak = t
		}
	}
	// Intensity rows: 4 levels.
	const levels = 4
	for lvl := levels; lvl >= 1; lvl-- {
		b.WriteString("  |")
		for _, c := range cells {
			total := c.read + c.write
			if peak > 0 && total*levels >= int64(lvl)*peak && total > 0 {
				if c.read >= c.write {
					b.WriteByte('R')
				} else {
					b.WriteByte('W')
				}
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteString("|\n")
	}
	b.WriteString("  +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("+\n")
	end := float64(last+1) * w.Width().Seconds()
	fmt.Fprintf(&b, "   0s%*s\n", width-1, fmt.Sprintf("%.0fs", end))
	fmt.Fprintf(&b, "   R = read-dominated, W = write-dominated; peak window %s\n", HumanBytes(peak))
	return b.String()
}
