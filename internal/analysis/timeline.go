package analysis

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"

	"repro/internal/iotrace"
	"repro/internal/sim"
)

// Point is one mark on a timeline figure: an operation plotted at its start
// time, with Y carrying the figure's vertical quantity (request size for the
// operation timelines, file id for the file-access timelines).
type Point struct {
	T    sim.Time
	Y    int64
	Node int
	File iotrace.FileID
	Op   iotrace.Op
}

// OpTimeline extracts the (time, request size) scatter for the given
// operation classes — the shape of Figures 2-4, 6-7 and 9-14. Points are
// returned in time order.
func OpTimeline(events []iotrace.Event, ops ...iotrace.Op) []Point {
	want := map[iotrace.Op]bool{}
	for _, op := range ops {
		want[op] = true
	}
	var pts []Point
	for _, e := range events {
		if !want[e.Op] {
			continue
		}
		pts = append(pts, Point{T: e.Start, Y: e.Bytes, Node: e.Node, File: e.File, Op: e.Op})
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
	return pts
}

// ReadTimeline returns the read-operation timeline (synchronous plus
// asynchronous reads, as the paper's read figures plot).
func ReadTimeline(events []iotrace.Event) []Point {
	return OpTimeline(events, iotrace.OpRead, iotrace.OpAsyncRead)
}

// WriteTimeline returns the write-operation timeline.
func WriteTimeline(events []iotrace.Event) []Point {
	return OpTimeline(events, iotrace.OpWrite)
}

// FileTimeline extracts the (time, file id) scatter of read and write
// activity — the shape of Figures 5, 8 and 15-17, where "crosses denote
// writes and diamonds denote reads".
func FileTimeline(events []iotrace.Event) []Point {
	var pts []Point
	for _, e := range events {
		switch e.Op {
		case iotrace.OpRead, iotrace.OpAsyncRead, iotrace.OpWrite:
			pts = append(pts, Point{T: e.Start, Y: int64(e.File), Node: e.Node, File: e.File, Op: e.Op})
		}
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
	return pts
}

// FilterPhase keeps only events captured during the named application phase.
func FilterPhase(events []iotrace.Event, phase string) []iotrace.Event {
	var out []iotrace.Event
	for _, e := range events {
		if e.Phase == phase {
			out = append(out, e)
		}
	}
	return out
}

// FilterTime keeps events that start within [from, to).
func FilterTime(events []iotrace.Event, from, to sim.Time) []iotrace.Event {
	var out []iotrace.Event
	for _, e := range events {
		if e.Start >= from && e.Start < to {
			out = append(out, e)
		}
	}
	return out
}

// FilterOps keeps events of the given operation classes.
func FilterOps(events []iotrace.Event, ops ...iotrace.Op) []iotrace.Event {
	want := map[iotrace.Op]bool{}
	for _, op := range ops {
		want[op] = true
	}
	var out []iotrace.Event
	for _, e := range events {
		if want[e.Op] {
			out = append(out, e)
		}
	}
	return out
}

// WriteCSV emits a timeline as CSV with header, one row per point:
// time_s, y, node, file, op.
func WriteCSV(w io.Writer, pts []Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "y", "node", "file", "op"}); err != nil {
		return err
	}
	for _, p := range pts {
		err := cw.Write([]string{
			fmt.Sprintf("%.6f", p.T.Seconds()),
			fmt.Sprintf("%d", p.Y),
			fmt.Sprintf("%d", p.Node),
			fmt.Sprintf("%d", p.File),
			p.Op.String(),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Burst is one cluster of temporally adjacent operations — e.g. one of
// ESCAT's synchronized quadrature-write groups in Figure 4.
type Burst struct {
	Start sim.Time
	End   sim.Time
	Count int
	Bytes int64
}

// Bursts clusters timeline points: a gap larger than maxGap between
// consecutive points starts a new burst. Points must be time-ordered (as all
// timeline constructors return them).
func Bursts(pts []Point, maxGap sim.Time) []Burst {
	var bursts []Burst
	for _, p := range pts {
		if n := len(bursts); n > 0 && p.T-bursts[n-1].End <= maxGap {
			b := &bursts[n-1]
			b.End = p.T
			b.Count++
			b.Bytes += p.Y
			continue
		}
		bursts = append(bursts, Burst{Start: p.T, End: p.T, Count: 1, Bytes: p.Y})
	}
	return bursts
}

// BurstSpacings returns the time between consecutive burst starts — the
// quantity the paper reads off Figure 4 ("roughly 160 seconds near the
// beginning of the phase to half that near the end").
func BurstSpacings(bursts []Burst) []sim.Time {
	var out []sim.Time
	for i := 1; i < len(bursts); i++ {
		out = append(out, bursts[i].Start-bursts[i-1].Start)
	}
	return out
}

// Throughput returns the mean data rate in bytes/second achieved by the
// given points over their time span (first start to last start plus nothing:
// callers wanting exact spans should pass an explicit makespan).
func Throughput(pts []Point, span sim.Time) float64 {
	if span <= 0 {
		return 0
	}
	var bytes int64
	for _, p := range pts {
		bytes += p.Y
	}
	return float64(bytes) / span.Seconds()
}
