package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/iotrace"
	"repro/internal/sim"
)

// Exposure is the wall-clock time the machine spent under each fault class —
// the union of the incident windows, so overlapping incidents of one kind are
// not double-counted.
type Exposure struct {
	Degraded sim.Time // >= 1 drive out somewhere (RAID-3 degraded or rebuilding)
	Outage   sim.Time // >= 1 I/O node out of service
	Storm    sim.Time // >= 1 latency storm active
}

// Exposures computes per-kind exposure from an incident timeline.
func Exposures(incidents []fault.Incident) Exposure {
	var e Exposure
	e.Degraded = unionTime(incidents, fault.DiskFailure)
	e.Outage = unionTime(incidents, fault.IONodeOutage)
	e.Storm = unionTime(incidents, fault.LatencyStorm)
	return e
}

func unionTime(incidents []fault.Incident, kind fault.Kind) sim.Time {
	type iv struct{ s, e sim.Time }
	var ivs []iv
	for _, inc := range incidents {
		if inc.Kind != kind || inc.End <= inc.Start {
			continue
		}
		ivs = append(ivs, iv{inc.Start, inc.End})
	}
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
	total := sim.Time(0)
	cur := ivs[0]
	for _, v := range ivs[1:] {
		if v.s > cur.e {
			total += cur.e - cur.s
			cur = v
			continue
		}
		if v.e > cur.e {
			cur.e = v.e
		}
	}
	total += cur.e - cur.s
	return total
}

// FaultImpact quantifies one incident's latency impact: the traced operations
// overlapping its window against the run's fault-free baseline.
type FaultImpact struct {
	Incident     fault.Incident
	Ops          int      // operations overlapping the window
	MeanLatency  sim.Time // their mean duration
	BaselineMean sim.Time // mean duration of ops outside every incident window
	Slowdown     float64  // MeanLatency / BaselineMean (0 when no baseline)
}

// FaultImpacts computes per-incident latency impact. Events and incidents
// must share a clock (one simulation attempt).
func FaultImpacts(events []iotrace.Event, incidents []fault.Incident) []FaultImpact {
	overlaps := func(e iotrace.Event, inc fault.Incident) bool {
		return e.Start < inc.End && e.End > inc.Start
	}
	// Baseline: operations clear of every incident.
	var baseSum sim.Time
	baseN := 0
	for _, e := range events {
		clear := true
		for _, inc := range incidents {
			if overlaps(e, inc) {
				clear = false
				break
			}
		}
		if clear {
			baseSum += e.Duration()
			baseN++
		}
	}
	var baseMean sim.Time
	if baseN > 0 {
		baseMean = baseSum / sim.Time(baseN)
	}

	out := make([]FaultImpact, 0, len(incidents))
	for _, inc := range incidents {
		var sum sim.Time
		n := 0
		for _, e := range events {
			if overlaps(e, inc) {
				sum += e.Duration()
				n++
			}
		}
		fi := FaultImpact{Incident: inc, Ops: n, BaselineMean: baseMean}
		if n > 0 {
			fi.MeanLatency = sum / sim.Time(n)
		}
		if baseMean > 0 && n > 0 {
			fi.Slowdown = float64(fi.MeanLatency) / float64(baseMean)
		}
		out = append(out, fi)
	}
	return out
}

// ResilienceReport is the chaos run's summary: attempt history, fault
// exposure, failover activity, and the checkpoint subsystem's costs against
// the work it saved.
type ResilienceReport struct {
	Wall     sim.Time // completion including restarts
	Attempts int
	Failures int
	LostWork sim.Time

	Checkpoints  int
	CkptOverhead sim.Time // node-time inside checkpoint rounds
	Restores     int
	RestoreTime  sim.Time

	Exposure Exposure
	Impacts  []FaultImpact

	// PFS failover counters.
	Timeouts, Retries, Reroutes, MirrorWrites, FailedOps int64
	BackoffTime                                          sim.Time

	// ReplicationFactor is the effective copies per chunk (0 or 1 = no
	// replication); Repair the repair control plane's availability summary.
	ReplicationFactor int
	Repair            RepairSummary
}

// RepairSummary is the availability view of the replication repair control
// plane: what the outage windows cost in redundancy and what it took to
// restore it.
type RepairSummary struct {
	Enabled      bool
	Outages      int64 // I/O-node outage windows observed
	SloppyWrites int64 // writes redirected to a replica while the primary was down
	MirrorMisses int64 // replica copies skipped because their target was down

	LedgerPuts int64 // under-replication entries enqueued
	LedgerPeak int64 // deepest the redirect ledger got
	Backlog    int64 // entries still unresolved at the end of the run

	ChunksRepaired int64 // copies restored by the repair daemon
	BytesRepaired  int64 // bytes re-replicated
	Abandoned      int64 // entries given up on (redundancy permanently lost)
	ThrottleTime   sim.Time

	TimeToFullRedundancy  sim.Time // last outage end -> ledger drained
	WindowOfVulnerability sim.Time // first outage -> redundancy restored
}

// UnrestoredReplicas counts chunk copies that will never be re-replicated —
// the durability deficit a scenario's min_redundancy assertion checks.
func (s RepairSummary) UnrestoredReplicas() int64 { return s.Abandoned + s.Backlog }

// RenderResilience formats the report as a text section.
func RenderResilience(r ResilienceReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Resilience report:\n")
	fmt.Fprintf(&b, "  completion      %12s  (%d attempts, %d failures)\n",
		fmtT(r.Wall), r.Attempts, r.Failures)
	fmt.Fprintf(&b, "  lost work       %12s\n", fmtT(r.LostWork))
	fmt.Fprintf(&b, "  checkpoints     %12d  overhead %s\n", r.Checkpoints, fmtT(r.CkptOverhead))
	fmt.Fprintf(&b, "  restores        %12d  restore time %s\n", r.Restores, fmtT(r.RestoreTime))
	fmt.Fprintf(&b, "  degraded arrays %12s  outages %s  storms %s\n",
		fmtT(r.Exposure.Degraded), fmtT(r.Exposure.Outage), fmtT(r.Exposure.Storm))
	fmt.Fprintf(&b, "  failover        %d timeouts, %d retries, %d reroutes, %d mirror writes, %d failed ops, %s backing off\n",
		r.Timeouts, r.Retries, r.Reroutes, r.MirrorWrites, r.FailedOps, fmtT(r.BackoffTime))
	if r.ReplicationFactor > 1 {
		fmt.Fprintf(&b, "  replication     RF=%d\n", r.ReplicationFactor)
	}
	if r.Repair.Enabled {
		s := r.Repair
		fmt.Fprintf(&b, "  durability      %d outages, %d sloppy writes, %d mirror misses\n",
			s.Outages, s.SloppyWrites, s.MirrorMisses)
		fmt.Fprintf(&b, "  repair          %d/%d chunks restored (%d bytes), %d abandoned, ledger peak %d, backlog %d, %s throttled\n",
			s.ChunksRepaired, s.LedgerPuts, s.BytesRepaired, s.Abandoned, s.LedgerPeak, s.Backlog, fmtT(s.ThrottleTime))
		fmt.Fprintf(&b, "  availability    time-to-full-redundancy %s, window-of-vulnerability %s\n",
			fmtT(s.TimeToFullRedundancy), fmtT(s.WindowOfVulnerability))
	}
	if len(r.Impacts) > 0 {
		fmt.Fprintf(&b, "  per-fault latency impact:\n")
		fmt.Fprintf(&b, "  %12s %6s %-14s %6s %12s %12s %9s\n",
			"start", "node", "kind", "ops", "mean", "baseline", "slowdown")
		for _, fi := range r.Impacts {
			slow := "-"
			if fi.Slowdown > 0 {
				slow = fmt.Sprintf("%8.2fx", fi.Slowdown)
			}
			fmt.Fprintf(&b, "  %12s %6d %-14s %6d %12s %12s %9s\n",
				fmtT(fi.Incident.Start), fi.Incident.Node, fi.Incident.Kind,
				fi.Ops, fmtT(fi.MeanLatency), fmtT(fi.BaselineMean), slow)
		}
	}
	return b.String()
}

// TradeoffPoint is one checkpoint-interval setting's outcome in the
// overhead-versus-lost-work tradeoff.
type TradeoffPoint struct {
	Interval    int // work units between checkpoints (0 = none)
	Checkpoints int
	Overhead    sim.Time
	LostWork    sim.Time
	Wall        sim.Time
}

// RenderTradeoff formats a tradeoff sweep as a table: frequent checkpoints
// buy small lost-work at high overhead, rare ones the reverse — the knee is
// the operating point.
func RenderTradeoff(points []TradeoffPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Checkpoint interval tradeoff:\n")
	fmt.Fprintf(&b, "  %8s %6s %12s %12s %12s\n",
		"interval", "ckpts", "overhead", "lost work", "completion")
	for _, p := range points {
		iv := "none"
		if p.Interval > 0 {
			iv = fmt.Sprintf("%d", p.Interval)
		}
		fmt.Fprintf(&b, "  %8s %6d %12s %12s %12s\n",
			iv, p.Checkpoints, fmtT(p.Overhead), fmtT(p.LostWork), fmtT(p.Wall))
	}
	return b.String()
}

func fmtT(t sim.Time) string { return fmt.Sprintf("%.3fs", float64(t)/float64(sim.Second)) }
