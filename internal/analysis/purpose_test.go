package analysis

import (
	"strings"
	"testing"

	"repro/internal/iotrace"
)

func rd(file iotrace.FileID, node int, off, n int64) iotrace.Event {
	return iotrace.Event{Op: iotrace.OpRead, File: file, Node: node, Offset: off, Bytes: n}
}

func wr(file iotrace.FileID, node int, off, n int64) iotrace.Event {
	return iotrace.Event{Op: iotrace.OpWrite, File: file, Node: node, Offset: off, Bytes: n}
}

func classOf(t *testing.T, fps []FilePurpose, id iotrace.FileID) FilePurpose {
	t.Helper()
	for _, fp := range fps {
		if fp.File == id {
			return fp
		}
	}
	t.Fatalf("file %d not classified", id)
	return FilePurpose{}
}

func TestClassifyCompulsoryRoles(t *testing.T) {
	events := []iotrace.Event{
		rd(1, 0, 0, 1000), rd(1, 0, 1000, 1000), // input: read only
		wr(2, 0, 0, 5000), // output: written only
	}
	fps := ClassifyPurposes(events)
	if got := classOf(t, fps, 1); got.Purpose != PurposeCompulsoryInput || got.Readers != 1 {
		t.Fatalf("file 1: %+v", got)
	}
	if got := classOf(t, fps, 2); got.Purpose != PurposeCompulsoryOutput {
		t.Fatalf("file 2: %+v", got)
	}
}

func TestClassifyCheckpointSingleReuse(t *testing.T) {
	// ESCAT staging shape: each node writes its region, then rereads it
	// exactly once.
	var events []iotrace.Event
	for node := 0; node < 4; node++ {
		base := int64(node) * 10_000
		for i := int64(0); i < 5; i++ {
			events = append(events, wr(7, node, base+i*2000, 2000))
		}
	}
	for node := 0; node < 4; node++ {
		events = append(events, rd(7, node, int64(node)*10_000, 10_000))
	}
	fps := ClassifyPurposes(events)
	got := classOf(t, fps, 7)
	if got.Purpose != PurposeCheckpoint {
		t.Fatalf("staging file: %+v", got)
	}
	if !got.RereadOwn {
		t.Fatal("reread-own not detected")
	}
}

func TestClassifyOutOfCoreRepeatedPasses(t *testing.T) {
	// HTF integral shape: one node writes its file, then rereads it in
	// several passes.
	var events []iotrace.Event
	for i := int64(0); i < 4; i++ {
		events = append(events, wr(9, 3, i*80_000, 80_000))
	}
	for pass := 0; pass < 6; pass++ {
		for i := int64(0); i < 4; i++ {
			events = append(events, rd(9, 3, i*80_000, 80_000))
		}
	}
	fps := ClassifyPurposes(events)
	got := classOf(t, fps, 9)
	if got.Purpose != PurposeOutOfCore {
		t.Fatalf("integral file: %+v", got)
	}
	if got.BytesRead != 6*got.BytesWritten {
		t.Fatalf("volumes %+v", got)
	}
}

func TestClassifyCrossNodeReadNotRereadOwn(t *testing.T) {
	events := []iotrace.Event{
		wr(5, 0, 0, 1000),
		rd(5, 1, 0, 1000), // a different node reads it
	}
	got := classOf(t, ClassifyPurposes(events), 5)
	if got.RereadOwn {
		t.Fatal("cross-node read misdetected as reread-own")
	}
}

func TestBreakdownAndRender(t *testing.T) {
	events := []iotrace.Event{
		rd(1, 0, 0, 1000),
		wr(2, 0, 0, 500),
		wr(3, 0, 0, 500),
	}
	fps := ClassifyPurposes(events)
	bd := BreakdownByPurpose(fps)
	var outputs PurposeBreakdown
	for _, b := range bd {
		if b.Purpose == PurposeCompulsoryOutput {
			outputs = b
		}
	}
	if outputs.Files != 2 || outputs.Bytes != 1000 {
		t.Fatalf("breakdown %+v", bd)
	}
	out := RenderPurposes(fps)
	for _, want := range []string{"compulsory-input", "compulsory-output", "purpose"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPurposeNames(t *testing.T) {
	if PurposeOutOfCore.String() != "out-of-core" || PurposeUnknown.String() != "unknown" {
		t.Fatal("names")
	}
	if Purpose(99).String() != "invalid" {
		t.Fatal("invalid name")
	}
}
