package analysis

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/iotrace"
	"repro/internal/sim"
)

// PlotOptions configures the ASCII scatter renderer.
type PlotOptions struct {
	Title  string
	Width  int  // plot area columns (default 72)
	Height int  // plot area rows (default 20)
	LogY   bool // logarithmic y axis (right for request sizes spanning B..MB)
	YLabel string
	XLabel string
}

// markFor picks the plot glyph: the paper's figures use diamonds for reads
// and crosses for writes; in ASCII we use 'o' and '+'.
func markFor(op iotrace.Op) byte {
	switch op {
	case iotrace.OpWrite:
		return '+'
	case iotrace.OpRead, iotrace.OpAsyncRead:
		return 'o'
	default:
		return '.'
	}
}

// RenderScatter draws a timeline as an ASCII scatter plot, the textual
// analogue of the paper's figures. Reads render as 'o', writes as '+'; a
// cell holding both renders as '*'.
func RenderScatter(pts []Point, opts PlotOptions) string {
	if opts.Width <= 0 {
		opts.Width = 72
	}
	if opts.Height <= 0 {
		opts.Height = 20
	}
	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	if len(pts) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}

	tMin, tMax := pts[0].T, pts[0].T
	yMin, yMax := pts[0].Y, pts[0].Y
	for _, p := range pts {
		if p.T < tMin {
			tMin = p.T
		}
		if p.T > tMax {
			tMax = p.T
		}
		if p.Y < yMin {
			yMin = p.Y
		}
		if p.Y > yMax {
			yMax = p.Y
		}
	}
	if tMax == tMin {
		tMax = tMin + 1
	}

	yPos := func(y int64) int {
		if opts.LogY {
			lo := math.Log10(math.Max(1, float64(yMin)))
			hi := math.Log10(math.Max(1, float64(yMax)))
			if hi == lo {
				return 0
			}
			v := math.Log10(math.Max(1, float64(y)))
			return int((v - lo) / (hi - lo) * float64(opts.Height-1))
		}
		if yMax == yMin {
			return 0
		}
		return int(float64(y-yMin) / float64(yMax-yMin) * float64(opts.Height-1))
	}

	grid := make([][]byte, opts.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", opts.Width))
	}
	for _, p := range pts {
		x := int(float64(p.T-tMin) / float64(tMax-tMin) * float64(opts.Width-1))
		y := yPos(p.Y)
		row := opts.Height - 1 - y
		m := markFor(p.Op)
		switch cur := grid[row][x]; {
		case cur == ' ':
			grid[row][x] = m
		case cur != m:
			grid[row][x] = '*'
		}
	}

	yAxisLabel := func(row int) string {
		frac := float64(opts.Height-1-row) / math.Max(1, float64(opts.Height-1))
		var v float64
		if opts.LogY {
			lo := math.Log10(math.Max(1, float64(yMin)))
			hi := math.Log10(math.Max(1, float64(yMax)))
			v = math.Pow(10, lo+frac*(hi-lo))
		} else {
			v = float64(yMin) + frac*float64(yMax-yMin)
		}
		return humanBytes(v)
	}

	for row := 0; row < opts.Height; row++ {
		label := ""
		if row == 0 || row == opts.Height-1 || row == opts.Height/2 {
			label = yAxisLabel(row)
		}
		fmt.Fprintf(&b, "%10s |%s|\n", label, string(grid[row]))
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", strings.Repeat("-", opts.Width))
	fmt.Fprintf(&b, "%10s  %-*s%s\n", "", opts.Width-10,
		fmt.Sprintf("%.0fs", tMin.Seconds()), fmt.Sprintf("%10.0fs", tMax.Seconds()))
	legend := "o = read   + = write   * = both"
	if opts.YLabel != "" || opts.XLabel != "" {
		legend += "   (" + opts.YLabel
		if opts.XLabel != "" {
			legend += " vs " + opts.XLabel
		}
		legend += ")"
	}
	fmt.Fprintf(&b, "%10s  %s\n", "", legend)
	return b.String()
}

// humanBytes renders a byte count compactly (B, KB, MB, GB).
func humanBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

// HumanBytes formats an integer byte count for reports.
func HumanBytes(n int64) string { return humanBytes(float64(n)) }

// Makespan returns the span from the first event start to the last event end
// (the run's I/O-visible duration).
func Makespan(events []iotrace.Event) sim.Time {
	if len(events) == 0 {
		return 0
	}
	first, last := events[0].Start, events[0].End
	for _, e := range events {
		if e.Start < first {
			first = e.Start
		}
		if e.End > last {
			last = e.End
		}
	}
	return last - first
}
