package disk

import (
	"testing"

	"repro/internal/sim"
)

// Golden healthy-vs-degraded comparison: the same request sequence on a
// healthy and a one-drive-down array. Degraded reads pay the reconstruction
// overhead plus the (D-1)/(D-2) transfer stretch; degraded writes cost
// exactly what healthy ones do.
func TestDegradedServiceGolden(t *testing.T) {
	cfg := testArrayConfig() // 5 drives, 1 µs/byte, 10 ms position, 1 ms overhead
	healthy := NewArray(cfg)
	degraded := NewArray(cfg)
	degraded.FailDisk(0)
	if !degraded.Degraded() {
		t.Fatal("array not degraded after FailDisk")
	}

	type req struct {
		stream, addr, bytes int64
		read                bool
	}
	seq := []req{
		{0, 0, 1000, true},                                                          // first read: positioning
		{0, 1000, 1000, true},                                                       // sequential read
		{1, 50000, 2000, false} /* write on a new stream */, {1, 52000, 500, false}, // sequential write
		{0, 2000, 4000, true}, // back on stream 0, sequential
	}

	factor := degraded.DegradedReadFactor()
	if want := 4.0 / 3.0; factor != want {
		t.Fatalf("DegradedReadFactor() = %v, want %v", factor, want)
	}
	recon := cfg.Overhead / 2 // default reconstruction overhead

	for i, q := range seq {
		h := healthy.Service(q.stream, q.addr, q.bytes, q.read)
		d := degraded.Service(q.stream, q.addr, q.bytes, q.read)
		transfer := sim.Time(float64(q.bytes) / cfg.BWBytesPerS * float64(sim.Second))
		want := h
		if q.read {
			want = h + recon + sim.Time(float64(transfer)*factor) - transfer
		}
		if d != want {
			t.Errorf("req %d (%+v): degraded %v, want %v (healthy %v)", i, q, d, want, h)
		}
	}

	hs, ds := healthy.Stats(), degraded.Stats()
	if hs.DegradedRequests != 0 {
		t.Errorf("healthy DegradedRequests = %d", hs.DegradedRequests)
	}
	if ds.DegradedRequests != int64(len(seq)) {
		t.Errorf("degraded DegradedRequests = %d, want %d", ds.DegradedRequests, len(seq))
	}
	if ds.Busy <= hs.Busy {
		t.Errorf("degraded busy %v not above healthy %v", ds.Busy, hs.Busy)
	}
}

// The explicit ReconstructOverhead knob overrides the half-overhead default.
func TestReconstructOverheadKnob(t *testing.T) {
	cfg := testArrayConfig()
	cfg.ReconstructOverhead = 7 * sim.Millisecond
	a := NewArray(cfg)
	base := NewArray(cfg)
	baseT := base.Service(0, 0, 1000, true)
	a.FailDisk(0)
	got := a.Service(0, 0, 1000, true)
	transfer := 1000 * sim.Microsecond
	want := baseT + 7*sim.Millisecond + sim.Time(float64(transfer)*a.DegradedReadFactor()) - transfer
	if got != want {
		t.Fatalf("degraded read with knob = %v, want %v", got, want)
	}
}

// Rebuild proceeds in fixed-size slices charged at the rebuild bandwidth, and
// completing the last slice repairs the array and closes the degraded
// interval in the stats.
func TestRebuildSlicesAndCompletion(t *testing.T) {
	cfg := testArrayConfig()
	cfg.DiskCapacity = 10 << 20 // 10 MB drive for a quick rebuild
	cfg.RebuildSliceBytes = 4 << 20
	cfg.RebuildBWBytesPerS = 1 << 20 // 1 MB/s: 4 s per full slice
	a := NewArray(cfg)

	if _, done := a.RebuildSlice(0); !done {
		t.Fatal("RebuildSlice on healthy array should be an immediate no-op")
	}

	a.FailDisk(100 * sim.Second)
	now := 100 * sim.Second
	var slices []sim.Time
	for {
		slice, done := a.RebuildSlice(now)
		slices = append(slices, slice)
		now += slice
		if done {
			break
		}
	}
	// 10 MB at 4 MB slices: 4 + 4 + 2.
	if len(slices) != 3 {
		t.Fatalf("rebuild took %d slices, want 3", len(slices))
	}
	if slices[0] != 4*sim.Second || slices[1] != 4*sim.Second || slices[2] != 2*sim.Second {
		t.Fatalf("slice times %v, want [4s 4s 2s]", slices)
	}
	if a.Degraded() || a.Dead() {
		t.Error("array not healthy after completed rebuild")
	}
	st := a.Stats()
	if st.Rebuilds != 1 {
		t.Errorf("Rebuilds = %d, want 1", st.Rebuilds)
	}
	if st.DegradedTime != 10*sim.Second {
		t.Errorf("DegradedTime = %v, want 10s", st.DegradedTime)
	}
}

// Rebuild progress resets if a second drive fails, and a dead array refuses
// service.
func TestSecondFailureKillsArray(t *testing.T) {
	a := NewArray(testArrayConfig())
	a.FailDisk(0)
	a.RebuildSlice(0)
	if a.RebuildProgress() <= 0 {
		t.Fatal("no rebuild progress after a slice")
	}
	a.FailDisk(sim.Second)
	if !a.Dead() {
		t.Fatal("array not dead after second failure")
	}
	if a.RebuildProgress() != 0 {
		t.Error("rebuild progress survives a killing failure")
	}
	defer func() {
		if recover() == nil {
			t.Error("Service on dead array did not panic")
		}
	}()
	a.Service(0, 0, 100, true)
}
