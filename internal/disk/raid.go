// Package disk models the RAID-3 disk arrays attached to each Paragon I/O
// node: five 1.2 GB drives behind a single controller, byte-striped with a
// dedicated parity drive, so every array request engages all spindles and the
// array behaves like one disk with ~4x the transfer rate (§3.2 of the paper).
//
// The model charges positioning time when an access does not continue
// sequentially from the previous one, plus serialized transfer at the array
// bandwidth, plus a fixed per-request controller overhead. Those three terms
// are what shaped the paper's findings: small non-sequential requests are
// dominated by positioning and overhead, while large sequential requests
// approach array bandwidth — the "impedance mismatch" §8 discusses.
package disk

import (
	"fmt"

	"repro/internal/sim"
)

// ArrayConfig describes a RAID-3 array.
type ArrayConfig struct {
	Disks        int      // total drives, including parity (paper: 5)
	DiskCapacity int64    // bytes per drive (paper: 1.2 GB)
	Position     sim.Time // average positioning (seek + rotation) time
	Overhead     sim.Time // fixed controller/firmware cost per request
	BWBytesPerS  float64  // sustained array data bandwidth, bytes/second

	// StreamCache is how many concurrent sequential streams the I/O node
	// can track (its readahead/write-behind buffer count). A request
	// continues sequentially only if its stream is still cached; with more
	// active files per array than buffers, every request pays positioning —
	// the regime the Hartree-Fock per-node files produce.
	StreamCache int
}

// DefaultArrayConfig returns parameters representative of the CCSF Paragon's
// RAID-3 arrays: 5 x 1.2 GB drives, ~15 ms positioning, ~10 MB/s streaming,
// and buffers for 4 concurrent streams.
func DefaultArrayConfig() ArrayConfig {
	return ArrayConfig{
		Disks:        5,
		DiskCapacity: 1_200_000_000,
		Position:     15 * sim.Millisecond,
		Overhead:     2 * sim.Millisecond,
		BWBytesPerS:  10e6,
		StreamCache:  4,
	}
}

// stream is one tracked sequential stream.
type stream struct {
	key     int64
	lastEnd int64
}

// Array is the state of one RAID-3 array: its configuration plus the
// per-stream positions implied by recent requests, used for sequential-access
// detection.
type Array struct {
	cfg     ArrayConfig
	streams []stream // most-recently-used first, capped at cfg.StreamCache

	// statistics
	requests    int64
	bytes       int64
	seqRequests int64
	busy        sim.Time
}

// NewArray creates an array with no tracked streams (the first request of
// every stream pays positioning).
func NewArray(cfg ArrayConfig) *Array {
	if cfg.Disks < 2 {
		panic(fmt.Sprintf("disk: RAID-3 needs >= 2 drives, got %d", cfg.Disks))
	}
	if cfg.BWBytesPerS <= 0 {
		panic("disk: non-positive bandwidth")
	}
	if cfg.StreamCache < 1 {
		cfg.StreamCache = 1
	}
	return &Array{cfg: cfg}
}

// Config returns the array configuration.
func (a *Array) Config() ArrayConfig { return a.cfg }

// Capacity returns the usable data capacity (all drives minus parity).
func (a *Array) Capacity() int64 {
	return int64(a.cfg.Disks-1) * a.cfg.DiskCapacity
}

// ServiceTime computes the time to service a request on the given stream
// (callers use the file identity) at the given array byte address, and
// advances that stream's modeled position. A request that continues its
// stream sequentially — and whose stream is still buffered — skips
// positioning.
func (a *Array) ServiceTime(streamKey, addr, bytes int64) sim.Time {
	if addr < 0 || bytes < 0 {
		panic(fmt.Sprintf("disk: invalid request addr=%d bytes=%d", addr, bytes))
	}
	t := a.cfg.Overhead
	if a.touch(streamKey, addr) {
		a.seqRequests++
	} else {
		t += a.cfg.Position
	}
	a.setEnd(streamKey, addr+bytes)
	t += sim.Time(float64(bytes) / a.cfg.BWBytesPerS * float64(sim.Second))
	a.requests++
	a.bytes += bytes
	a.busy += t
	return t
}

// SweepServiceTime services a sorted scatter-gather sweep: several disjoint
// requests submitted together and serviced in one arm pass — the disk side
// of PPFS's global request aggregation (§8: disjoint small requests "can be
// combined, significantly increasing disk efficiency"). The sweep pays one
// positioning and one controller overhead, the aggregate transfer, and a
// quarter-overhead per additional request for the scatter-gather bookkeeping.
func (a *Array) SweepServiceTime(streamKey, addr, bytes int64, requests int) sim.Time {
	if addr < 0 || bytes < 0 || requests < 1 {
		panic(fmt.Sprintf("disk: invalid sweep addr=%d bytes=%d requests=%d", addr, bytes, requests))
	}
	t := a.cfg.Overhead + sim.Time(requests-1)*a.cfg.Overhead/4
	if a.touch(streamKey, addr) {
		a.seqRequests++
	} else {
		t += a.cfg.Position
	}
	a.setEnd(streamKey, addr+bytes)
	t += sim.Time(float64(bytes) / a.cfg.BWBytesPerS * float64(sim.Second))
	a.requests += int64(requests)
	a.bytes += bytes
	a.busy += t
	return t
}

// touch looks the stream up, moving it to the front; it reports whether the
// request at addr continues the stream sequentially.
func (a *Array) touch(key, addr int64) bool {
	for i := range a.streams {
		if a.streams[i].key == key {
			s := a.streams[i]
			copy(a.streams[1:i+1], a.streams[:i])
			a.streams[0] = s
			return s.lastEnd == addr
		}
	}
	// Not tracked: install at front, evicting the least recently used.
	if len(a.streams) < a.cfg.StreamCache {
		a.streams = append(a.streams, stream{})
	}
	copy(a.streams[1:], a.streams[:len(a.streams)-1])
	a.streams[0] = stream{key: key, lastEnd: -1}
	return false
}

func (a *Array) setEnd(key, end int64) {
	// touch always leaves the stream at the front.
	a.streams[0].lastEnd = end
}

// Stats summarizes array activity.
type Stats struct {
	Requests   int64    // total requests serviced
	Sequential int64    // requests that continued sequentially (no positioning)
	Bytes      int64    // total bytes transferred
	Busy       sim.Time // total service time charged
}

// Stats returns accumulated activity counters.
func (a *Array) Stats() Stats {
	return Stats{Requests: a.requests, Sequential: a.seqRequests, Bytes: a.bytes, Busy: a.busy}
}
