// Package disk models the RAID-3 disk arrays attached to each Paragon I/O
// node: five 1.2 GB drives behind a single controller, byte-striped with a
// dedicated parity drive, so every array request engages all spindles and the
// array behaves like one disk with ~4x the transfer rate (§3.2 of the paper).
//
// The model charges positioning time when an access does not continue
// sequentially from the previous one, plus serialized transfer at the array
// bandwidth, plus a fixed per-request controller overhead. Those three terms
// are what shaped the paper's findings: small non-sequential requests are
// dominated by positioning and overhead, while large sequential requests
// approach array bandwidth — the "impedance mismatch" §8 discusses.
//
// Per-stream sequential detection (Service's stream/addr arguments) is relied
// on by the layers above: ionode.BlockIO passes application streams through
// unchanged, and the internal/cache layer deliberately issues block-aligned
// fetches and flushes as single contiguous ascending runs per stream, so a
// cached workload looks *more* sequential to the array, never less.
package disk

import (
	"fmt"

	"repro/internal/sim"
)

// ArrayConfig describes a RAID-3 array.
type ArrayConfig struct {
	Disks        int      // total drives, including parity (paper: 5)
	DiskCapacity int64    // bytes per drive (paper: 1.2 GB)
	Position     sim.Time // average positioning (seek + rotation) time
	Overhead     sim.Time // fixed controller/firmware cost per request
	BWBytesPerS  float64  // sustained array data bandwidth, bytes/second

	// StreamCache is how many concurrent sequential streams the I/O node
	// can track (its readahead/write-behind buffer count). A request
	// continues sequentially only if its stream is still cached; with more
	// active files per array than buffers, every request pays positioning —
	// the regime the Hartree-Fock per-node files produce.
	StreamCache int

	// ReconstructOverhead is the extra controller cost a degraded-mode read
	// pays per request to XOR the surviving drives' lanes back into the
	// failed drive's data. Zero selects a default of half the request
	// overhead.
	ReconstructOverhead sim.Time

	// RebuildBWBytesPerS is the sustained rate at which a background rebuild
	// scans the surviving drives onto the replacement. Zero selects a
	// default of 40% of the array data bandwidth.
	RebuildBWBytesPerS float64

	// RebuildSliceBytes is the rebuild work quantum: the rebuild process
	// occupies the array for one slice at a time, so foreground requests
	// interleave with (and are delayed by) rebuild passes. Zero selects a
	// 4 MB default.
	RebuildSliceBytes int64
}

// DefaultArrayConfig returns parameters representative of the CCSF Paragon's
// RAID-3 arrays: 5 x 1.2 GB drives, ~15 ms positioning, ~10 MB/s streaming,
// and buffers for 4 concurrent streams.
func DefaultArrayConfig() ArrayConfig {
	return ArrayConfig{
		Disks:        5,
		DiskCapacity: 1_200_000_000,
		Position:     15 * sim.Millisecond,
		Overhead:     2 * sim.Millisecond,
		BWBytesPerS:  10e6,
		StreamCache:  4,
	}
}

// stream is one tracked sequential stream.
type stream struct {
	key     int64
	lastEnd int64
}

// Array is the state of one RAID-3 array: its configuration plus the
// per-stream positions implied by recent requests, used for sequential-access
// detection, plus the redundancy state driven by fault injection (healthy,
// degraded with one failed drive, or dead with two).
type Array struct {
	cfg     ArrayConfig
	streams []stream // most-recently-used first, capped at cfg.StreamCache

	// redundancy state
	failedDisks  int
	rebuiltBytes int64 // rebuild progress toward cfg.DiskCapacity
	failedAt     sim.Time

	// statistics
	requests    int64
	bytes       int64
	seqRequests int64
	busy        sim.Time

	degradedRequests int64
	degradedTime     sim.Time // accumulated wall time spent degraded or dead
	rebuilds         int64

	repairs     int64 // parity block reconstructions (integrity layer)
	repairBytes int64
	scrubReads  int64 // background-scrub verification reads
	scrubBytes  int64
}

// NewArray creates an array with no tracked streams (the first request of
// every stream pays positioning).
func NewArray(cfg ArrayConfig) *Array {
	if cfg.Disks < 2 {
		panic(fmt.Sprintf("disk: RAID-3 needs >= 2 drives, got %d", cfg.Disks))
	}
	if cfg.BWBytesPerS <= 0 {
		panic("disk: non-positive bandwidth")
	}
	if cfg.StreamCache < 1 {
		cfg.StreamCache = 1
	}
	return &Array{cfg: cfg}
}

// Config returns the array configuration.
func (a *Array) Config() ArrayConfig { return a.cfg }

// Capacity returns the usable data capacity (all drives minus parity).
func (a *Array) Capacity() int64 {
	return int64(a.cfg.Disks-1) * a.cfg.DiskCapacity
}

// ServiceTime computes the time to service a write-path request on the given
// stream (callers use the file identity) at the given array byte address, and
// advances that stream's modeled position. A request that continues its
// stream sequentially — and whose stream is still buffered — skips
// positioning. It is equivalent to Service with read=false.
func (a *Array) ServiceTime(streamKey, addr, bytes int64) sim.Time {
	return a.Service(streamKey, addr, bytes, false)
}

// Service computes the time to service a request, distinguishing reads from
// writes because the two differ once the array is degraded: a degraded read
// must fetch every surviving drive's lane and XOR the failed drive's data
// back into existence — the transfer slows by (D-1)/(D-2) and pays a
// reconstruction overhead — while a degraded write simply skips the failed
// lane (parity still makes the data recoverable), so writes stay at healthy
// cost. On a healthy array reads and writes are charged identically, so the
// healthy path is bit-for-bit unchanged by the read flag.
func (a *Array) Service(streamKey, addr, bytes int64, read bool) sim.Time {
	if addr < 0 || bytes < 0 {
		panic(fmt.Sprintf("disk: invalid request addr=%d bytes=%d", addr, bytes))
	}
	if a.Dead() {
		panic("disk: request on dead array (two failed drives)")
	}
	t := a.cfg.Overhead
	if a.touch(streamKey, addr) {
		a.seqRequests++
	} else {
		t += a.cfg.Position
	}
	a.setEnd(streamKey, addr+bytes)
	transfer := sim.Time(float64(bytes) / a.cfg.BWBytesPerS * float64(sim.Second))
	if read && a.failedDisks > 0 {
		t += a.reconstructOverhead()
		transfer = sim.Time(float64(transfer) * a.DegradedReadFactor())
		a.degradedRequests++
	} else if a.failedDisks > 0 {
		a.degradedRequests++
	}
	t += transfer
	a.requests++
	a.bytes += bytes
	a.busy += t
	return t
}

// DegradedReadFactor is the multiplier a degraded read's transfer time pays
// for parity reconstruction: with D drives (one of them parity), losing one
// data drive leaves D-2 of the D-1 data lanes, so the effective data rate
// drops to (D-2)/(D-1) of healthy. Arrays too small for that ratio to be
// meaningful (fewer than 4 drives) pay a factor of 2.
func (a *Array) DegradedReadFactor() float64 {
	d := a.cfg.Disks
	if d < 4 {
		return 2
	}
	return float64(d-1) / float64(d-2)
}

func (a *Array) reconstructOverhead() sim.Time {
	if a.cfg.ReconstructOverhead > 0 {
		return a.cfg.ReconstructOverhead
	}
	return a.cfg.Overhead / 2
}

// RepairService is the time for an in-place parity reconstruction of a
// corrupt block: the controller reads the surviving drives' lanes (paying the
// degraded-read slowdown even on a healthy array — the suspect lane is
// excluded), XORs the block back into existence, and rewrites it. The caller
// (the I/O node's integrity check or scrubber) must hold the request queue
// for the returned duration. It panics on a dead array, where no parity
// remains to repair from.
func (a *Array) RepairService(bytes int64) sim.Time {
	if bytes < 0 {
		panic(fmt.Sprintf("disk: invalid repair bytes=%d", bytes))
	}
	if a.Dead() {
		panic("disk: repair on dead array (two failed drives)")
	}
	transfer := sim.Time(float64(bytes) / a.cfg.BWBytesPerS * float64(sim.Second))
	t := a.cfg.Overhead + a.reconstructOverhead() +
		sim.Time(float64(transfer)*a.DegradedReadFactor()) + // read surviving lanes
		transfer // rewrite the reconstructed block
	a.repairs++
	a.repairBytes += bytes
	a.busy += t
	return t
}

// ScrubRead is the time for one background-scrub verification read of bytes:
// one positioning (the scrub cursor rarely continues a foreground stream),
// one controller overhead, and the transfer. It deliberately bypasses the
// sequential-stream tracker so scrub traffic never perturbs foreground
// sequential detection. The caller must hold the request queue.
func (a *Array) ScrubRead(bytes int64) sim.Time {
	if bytes < 0 {
		panic(fmt.Sprintf("disk: invalid scrub bytes=%d", bytes))
	}
	t := a.cfg.Overhead + a.cfg.Position +
		sim.Time(float64(bytes)/a.cfg.BWBytesPerS*float64(sim.Second))
	a.scrubReads++
	a.scrubBytes += bytes
	a.busy += t
	return t
}

// SweepServiceTime services a sorted scatter-gather sweep: several disjoint
// requests submitted together and serviced in one arm pass — the disk side
// of PPFS's global request aggregation (§8: disjoint small requests "can be
// combined, significantly increasing disk efficiency"). The sweep pays one
// positioning and one controller overhead, the aggregate transfer, and a
// quarter-overhead per additional request for the scatter-gather bookkeeping.
func (a *Array) SweepServiceTime(streamKey, addr, bytes int64, requests int) sim.Time {
	if addr < 0 || bytes < 0 || requests < 1 {
		panic(fmt.Sprintf("disk: invalid sweep addr=%d bytes=%d requests=%d", addr, bytes, requests))
	}
	t := a.cfg.Overhead + sim.Time(requests-1)*a.cfg.Overhead/4
	if a.touch(streamKey, addr) {
		a.seqRequests++
	} else {
		t += a.cfg.Position
	}
	a.setEnd(streamKey, addr+bytes)
	t += sim.Time(float64(bytes) / a.cfg.BWBytesPerS * float64(sim.Second))
	a.requests += int64(requests)
	a.bytes += bytes
	a.busy += t
	return t
}

// touch looks the stream up, moving it to the front; it reports whether the
// request at addr continues the stream sequentially.
func (a *Array) touch(key, addr int64) bool {
	for i := range a.streams {
		if a.streams[i].key == key {
			s := a.streams[i]
			copy(a.streams[1:i+1], a.streams[:i])
			a.streams[0] = s
			return s.lastEnd == addr
		}
	}
	// Not tracked: install at front, evicting the least recently used.
	if len(a.streams) < a.cfg.StreamCache {
		a.streams = append(a.streams, stream{})
	}
	copy(a.streams[1:], a.streams[:len(a.streams)-1])
	a.streams[0] = stream{key: key, lastEnd: -1}
	return false
}

func (a *Array) setEnd(key, end int64) {
	// touch always leaves the stream at the front.
	a.streams[0].lastEnd = end
}

// FailDisk takes one drive out of the array at the given instant. The first
// failure flips the array into degraded mode and resets rebuild progress; a
// second failure while still degraded kills the array (RAID-3's single
// parity drive cannot cover two losses), after which requests must not be
// issued (see Dead).
func (a *Array) FailDisk(now sim.Time) {
	if a.failedDisks == 0 {
		a.failedAt = now
	}
	if a.failedDisks < 2 {
		a.failedDisks++
	}
	a.rebuiltBytes = 0
}

// Degraded reports whether exactly one drive is out (parity reconstruction
// active, rebuild possible).
func (a *Array) Degraded() bool { return a.failedDisks == 1 }

// Dead reports whether the array has lost more drives than parity covers.
func (a *Array) Dead() bool { return a.failedDisks >= 2 }

// RebuildSlice advances the background rebuild by one work quantum and
// returns the array time the slice occupies plus whether the rebuild (and
// therefore the array) is complete. The caller — the fault injector's
// rebuild process — must hold the array's request queue for the returned
// duration, which is how rebuild bandwidth contends with foreground
// requests. RebuildSlice on a dead or healthy array returns done without
// charging time.
func (a *Array) RebuildSlice(now sim.Time) (slice sim.Time, done bool) {
	if a.failedDisks != 1 {
		return 0, true
	}
	quantum := a.cfg.RebuildSliceBytes
	if quantum <= 0 {
		quantum = 4 << 20
	}
	remaining := a.cfg.DiskCapacity - a.rebuiltBytes
	if quantum > remaining {
		quantum = remaining
	}
	bw := a.cfg.RebuildBWBytesPerS
	if bw <= 0 {
		bw = a.cfg.BWBytesPerS * 0.4
	}
	slice = sim.Time(float64(quantum) / bw * float64(sim.Second))
	a.rebuiltBytes += quantum
	a.busy += slice
	if a.rebuiltBytes >= a.cfg.DiskCapacity {
		a.repair(now + slice)
		return slice, true
	}
	return slice, false
}

// repair returns the array to healthy after a completed rebuild.
func (a *Array) repair(now sim.Time) {
	a.failedDisks = 0
	a.rebuiltBytes = 0
	a.rebuilds++
	a.degradedTime += now - a.failedAt
}

// RebuildProgress reports the fraction of the replacement drive rebuilt.
func (a *Array) RebuildProgress() float64 {
	if a.failedDisks != 1 || a.cfg.DiskCapacity == 0 {
		return 0
	}
	return float64(a.rebuiltBytes) / float64(a.cfg.DiskCapacity)
}

// DegradedSince returns the instant the current failure began, if the array
// is not healthy.
func (a *Array) DegradedSince() (sim.Time, bool) {
	if a.failedDisks == 0 {
		return 0, false
	}
	return a.failedAt, true
}

// Stats summarizes array activity.
type Stats struct {
	Requests   int64    // total requests serviced
	Sequential int64    // requests that continued sequentially (no positioning)
	Bytes      int64    // total bytes transferred
	Busy       sim.Time // total service time charged

	DegradedRequests int64    // requests serviced while a drive was out
	DegradedTime     sim.Time // completed degraded intervals (rebuilds finished)
	Rebuilds         int64    // rebuilds completed

	Repairs     int64 // parity block reconstructions (integrity layer)
	RepairBytes int64
	ScrubReads  int64 // background-scrub verification reads
	ScrubBytes  int64
}

// Stats returns accumulated activity counters. DegradedTime covers completed
// failure intervals only; an interval still open at the end of a run is
// reported via DegradedSince.
func (a *Array) Stats() Stats {
	return Stats{
		Requests: a.requests, Sequential: a.seqRequests, Bytes: a.bytes, Busy: a.busy,
		DegradedRequests: a.degradedRequests, DegradedTime: a.degradedTime, Rebuilds: a.rebuilds,
		Repairs: a.repairs, RepairBytes: a.repairBytes,
		ScrubReads: a.scrubReads, ScrubBytes: a.scrubBytes,
	}
}
