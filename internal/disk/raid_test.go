package disk

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testArrayConfig() ArrayConfig {
	return ArrayConfig{
		Disks:        5,
		DiskCapacity: 1_200_000_000,
		Position:     10 * sim.Millisecond,
		Overhead:     1 * sim.Millisecond,
		BWBytesPerS:  1e6, // 1 byte = 1 µs
	}
}

func TestFirstRequestPaysPositioning(t *testing.T) {
	a := NewArray(testArrayConfig())
	got := a.ServiceTime(0, 0, 1000)
	want := 10*sim.Millisecond + 1*sim.Millisecond + 1000*sim.Microsecond
	if got != want {
		t.Fatalf("first request %v, want %v", got, want)
	}
}

func TestSequentialSkipsPositioning(t *testing.T) {
	a := NewArray(testArrayConfig())
	a.ServiceTime(0, 0, 1000)
	got := a.ServiceTime(0, 1000, 500) // continues where previous ended
	want := 1*sim.Millisecond + 500*sim.Microsecond
	if got != want {
		t.Fatalf("sequential request %v, want %v", got, want)
	}
	st := a.Stats()
	if st.Sequential != 1 {
		t.Fatalf("sequential count %d, want 1", st.Sequential)
	}
}

func TestNonSequentialPaysPositioning(t *testing.T) {
	a := NewArray(testArrayConfig())
	a.ServiceTime(0, 0, 1000)
	got := a.ServiceTime(0, 5000, 500) // gap
	want := 10*sim.Millisecond + 1*sim.Millisecond + 500*sim.Microsecond
	if got != want {
		t.Fatalf("random request %v, want %v", got, want)
	}
	// Backwards also pays.
	got = a.ServiceTime(0, 0, 100)
	want = 10*sim.Millisecond + 1*sim.Millisecond + 100*sim.Microsecond
	if got != want {
		t.Fatalf("backward request %v, want %v", got, want)
	}
}

func TestLargeSequentialApproachesBandwidth(t *testing.T) {
	cfg := testArrayConfig()
	cfg.BWBytesPerS = 10e6
	a := NewArray(cfg)
	const chunk = 64 * 1024
	var total sim.Time
	addr := int64(0)
	for i := 0; i < 100; i++ {
		total += a.ServiceTime(0, addr, chunk)
		addr += chunk
	}
	bytes := float64(100 * chunk)
	rate := bytes / total.Seconds()
	// One positioning + 100 overheads amortized over 6.4 MB: should land
	// within 20% of the 10 MB/s streaming rate.
	if rate < 8e6 || rate > 10e6 {
		t.Fatalf("sequential rate %.2f MB/s, want ~8-10", rate/1e6)
	}
}

func TestSmallRandomDominatedByPositioning(t *testing.T) {
	a := NewArray(testArrayConfig())
	svc := a.ServiceTime(0, 1<<20, 2048)
	transfer := 2048 * sim.Microsecond
	if svc < 5*transfer {
		t.Fatalf("small random request should be positioning-dominated: svc=%v transfer=%v", svc, transfer)
	}
}

func TestCapacityExcludesParity(t *testing.T) {
	a := NewArray(testArrayConfig())
	if a.Capacity() != 4*1_200_000_000 {
		t.Fatalf("capacity %d", a.Capacity())
	}
}

func TestStatsAccumulate(t *testing.T) {
	a := NewArray(testArrayConfig())
	a.ServiceTime(0, 0, 100)
	a.ServiceTime(0, 100, 200)
	st := a.Stats()
	if st.Requests != 2 || st.Bytes != 300 {
		t.Fatalf("stats %+v", st)
	}
	if st.Busy <= 0 {
		t.Fatal("no busy time accumulated")
	}
}

// Property: service time is always at least overhead + transfer, and exactly
// that when the access is sequential.
func TestServiceTimeLowerBoundProperty(t *testing.T) {
	cfg := testArrayConfig()
	prop := func(addrs []uint16, sizes []uint8) bool {
		a := NewArray(cfg)
		n := len(addrs)
		if len(sizes) < n {
			n = len(sizes)
		}
		for i := 0; i < n; i++ {
			addr, size := int64(addrs[i]), int64(sizes[i])
			svc := a.ServiceTime(0, addr, size)
			min := cfg.Overhead + sim.Time(size)*sim.Microsecond
			if svc < min {
				return false
			}
			if svc > min+cfg.Position {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidArrayPanics(t *testing.T) {
	for name, cfg := range map[string]ArrayConfig{
		"one-disk": {Disks: 1, BWBytesPerS: 1},
		"zero-bw":  {Disks: 5, BWBytesPerS: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewArray did not panic", name)
				}
			}()
			NewArray(cfg)
		}()
	}
}

func TestNegativeRequestPanics(t *testing.T) {
	a := NewArray(testArrayConfig())
	defer func() {
		if recover() == nil {
			t.Error("negative request did not panic")
		}
	}()
	a.ServiceTime(0, -1, 10)
}

func TestStreamCacheKeepsConcurrentStreamsSequential(t *testing.T) {
	cfg := testArrayConfig() // StreamCache defaults to min 1; set explicitly
	cfg.StreamCache = 2
	a := NewArray(cfg)
	seq := func(stream, addr int64, n int64) sim.Time { return a.ServiceTime(stream, addr, n) }
	// Two interleaved streams both stay sequential with a 2-entry cache.
	seq(1, 0, 100)
	seq(2, 1<<20, 100)
	if got := seq(1, 100, 100); got != 1*sim.Millisecond+100*sim.Microsecond {
		t.Fatalf("stream 1 lost sequentiality: %v", got)
	}
	if got := seq(2, 1<<20+100, 100); got != 1*sim.Millisecond+100*sim.Microsecond {
		t.Fatalf("stream 2 lost sequentiality: %v", got)
	}
}

func TestStreamCacheEvictionForcesPositioning(t *testing.T) {
	cfg := testArrayConfig()
	cfg.StreamCache = 2
	a := NewArray(cfg)
	a.ServiceTime(1, 0, 100)
	a.ServiceTime(2, 1<<20, 100)
	a.ServiceTime(3, 2<<20, 100) // evicts stream 1 (LRU)
	// Stream 1 continues at its old end but was evicted: pays positioning.
	got := a.ServiceTime(1, 100, 100)
	want := 10*sim.Millisecond + 1*sim.Millisecond + 100*sim.Microsecond
	if got != want {
		t.Fatalf("evicted stream serviced at %v, want %v", got, want)
	}
	// Stream 3 (recently used) is still sequential.
	got = a.ServiceTime(3, 2<<20+100, 100)
	if got != 1*sim.Millisecond+100*sim.Microsecond {
		t.Fatalf("stream 3 lost sequentiality: %v", got)
	}
}

func TestStreamCacheLRUOrder(t *testing.T) {
	cfg := testArrayConfig()
	cfg.StreamCache = 2
	a := NewArray(cfg)
	a.ServiceTime(1, 0, 100)
	a.ServiceTime(2, 1<<20, 100)
	a.ServiceTime(1, 100, 100)   // touch stream 1: now MRU
	a.ServiceTime(3, 2<<20, 100) // evicts stream 2, not 1
	got := a.ServiceTime(1, 200, 100)
	if got != 1*sim.Millisecond+100*sim.Microsecond {
		t.Fatalf("MRU stream evicted: %v", got)
	}
}

func TestSweepServiceTimeAmortizesPositioning(t *testing.T) {
	cfg := testArrayConfig()
	a := NewArray(cfg)
	// 8 disjoint 2 KB pieces as one sweep: one positioning, one overhead,
	// 7 quarter-overheads, one aggregate transfer.
	got := a.SweepServiceTime(1, 0, 8*2048, 8)
	want := cfg.Position + cfg.Overhead + 7*cfg.Overhead/4 + 8*2048*sim.Microsecond
	if got != want {
		t.Fatalf("sweep %v, want %v", got, want)
	}
	// The same pieces as individual random requests cost far more.
	b := NewArray(cfg)
	var individual sim.Time
	for i := int64(0); i < 8; i++ {
		individual += b.ServiceTime(1, i*1<<20, 2048)
	}
	if got*2 > individual {
		t.Fatalf("sweep %v not clearly cheaper than %v individually", got, individual)
	}
	if st := a.Stats(); st.Requests != 8 || st.Bytes != 8*2048 {
		t.Fatalf("sweep stats %+v", st)
	}
}

func TestSweepInvalidPanics(t *testing.T) {
	a := NewArray(testArrayConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("invalid sweep did not panic")
		}
	}()
	a.SweepServiceTime(0, 0, 100, 0)
}
