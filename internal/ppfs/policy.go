// Package ppfs reimplements the policy layer of PPFS, the Portable Parallel
// File System the paper's group built [8] and used for the §5.2 experiment:
// a user-level library over the native parallel file system that lets
// applications (or an adaptive classifier, §10) choose caching, prefetching,
// write-behind and request-aggregation policies per file.
//
// It implements the same workload.FS surface as raw PFS, so the identical
// application skeleton runs on either — which is what makes the paper's
// ablation ("this combination of policies effectively eliminated the
// behavior seen in Figure 4") an apples-to-apples comparison here.
//
// Two event streams result from a PPFS run: the application-visible stream
// captured by the recorder installed on the PPFS layer (small writes return
// at memory-copy cost), and the physical stream captured by the recorder on
// the underlying PFS (few, large, aggregated extents written by background
// flushers).
package ppfs

import (
	"fmt"

	"repro/internal/sim"
)

// Policy selects the client-side behaviors of a PPFS instance.
type Policy struct {
	// WriteBehind buffers small sequential-or-not writes client-side and
	// completes them immediately; background flushers push the data to the
	// file system.
	WriteBehind bool

	// Aggregation coalesces buffered writes into contiguous extents before
	// flushing, turning many small requests into few large ones (the §8
	// "impedance matching"). Requires WriteBehind.
	Aggregation bool

	// FlushHighWater triggers an immediate background flush when a file's
	// buffered bytes reach it; FlushInterval bounds how long buffered data
	// may linger. Zero values take defaults (4 stripe units, 1 s).
	FlushHighWater int64
	FlushInterval  sim.Time

	// DirectWriteBytes sends writes at least this large straight to the
	// file system even when write-behind is on (they are already efficient
	// there). Zero takes the default (one stripe unit).
	DirectWriteBytes int64

	// CacheBlocks and BlockSize shape the client block cache used for
	// reads. CacheBlocks == 0 disables caching.
	CacheBlocks int
	BlockSize   int64

	// Prefetch reads this many blocks ahead when the classifier sees a
	// sequential read stream. 0 disables prefetching.
	Prefetch int

	// BypassBytes streams reads at least this large directly, without
	// polluting the block cache. Zero takes the default (4 blocks).
	BypassBytes int64

	// CopyBytesPerS is the client memory-copy bandwidth charged when data
	// moves between application and cache/buffer. Zero takes the default
	// (30 MB/s, a mid-1990s node).
	CopyBytesPerS float64

	// Adaptive consults the access-pattern classifier (§10) per stream and
	// applies prefetching only to streams it classifies as sequential and
	// write-behind only to small-request write streams, instead of
	// unconditionally.
	Adaptive bool
}

// DefaultPolicy returns the configuration used for the §5.2 experiment:
// write-behind with global aggregation, a modest block cache, and sequential
// prefetching.
func DefaultPolicy() Policy {
	return Policy{
		WriteBehind: true,
		Aggregation: true,
		CacheBlocks: 256,
		BlockSize:   64 * 1024,
		Prefetch:    2,
	}
}

// PassthroughPolicy returns a policy with every optimization disabled —
// PPFS reduces to bookkeeping over the native file system.
func PassthroughPolicy() Policy { return Policy{} }

// withDefaults fills zero values.
func (p Policy) withDefaults(stripe int64) Policy {
	if p.FlushHighWater == 0 {
		p.FlushHighWater = 4 * stripe
	}
	if p.FlushInterval == 0 {
		p.FlushInterval = 1 * sim.Second
	}
	if p.DirectWriteBytes == 0 {
		p.DirectWriteBytes = stripe
	}
	if p.BlockSize == 0 {
		p.BlockSize = stripe
	}
	if p.BypassBytes == 0 {
		p.BypassBytes = 4 * p.BlockSize
	}
	if p.CopyBytesPerS == 0 {
		p.CopyBytesPerS = 30e6
	}
	return p
}

// Validate rejects inconsistent policies.
func (p Policy) Validate() error {
	if p.Aggregation && !p.WriteBehind {
		return fmt.Errorf("ppfs: aggregation requires write-behind")
	}
	if p.CacheBlocks < 0 || p.Prefetch < 0 {
		return fmt.Errorf("ppfs: negative cache/prefetch in %+v", p)
	}
	if p.Prefetch > 0 && p.CacheBlocks == 0 {
		return fmt.Errorf("ppfs: prefetch requires a block cache")
	}
	if p.BlockSize < 0 || p.FlushHighWater < 0 || p.FlushInterval < 0 {
		return fmt.Errorf("ppfs: negative sizes in %+v", p)
	}
	return nil
}

// Stats counts policy-layer activity.
type Stats struct {
	CacheHits      int64 // read bytes served from cache or write buffer
	CacheMisses    int64 // block fetches from the file system
	Prefetches     int64 // blocks fetched ahead of demand
	PrefetchHits   int64 // demand reads that found a prefetched block
	BufferedWrites int64 // writes absorbed by write-behind
	DirectWrites   int64 // writes sent straight through
	Flushes        int64 // physical write extents issued by flushers
	FlushedBytes   int64 // bytes those extents carried
	Drains         int64 // synchronous drains forced by reads/closes
}

// MeanFlushExtent returns the average physical flush size in bytes.
func (s Stats) MeanFlushExtent() int64 {
	if s.Flushes == 0 {
		return 0
	}
	return s.FlushedBytes / s.Flushes
}
