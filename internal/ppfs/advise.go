package ppfs

import "fmt"

// Advice is an application-supplied declaration of a file's expected access
// pattern — §10: the group's PPFS "allows users to advertise expected file
// access patterns and to choose file distribution, caching, and prefetch
// policies". Advice overrides both the unconditional policy defaults and
// the adaptive classifier for the advised file.
type Advice struct {
	// Pattern the application expects (sequential enables prefetch,
	// random disables it).
	Pattern Pattern

	// WriteBehind forces write-behind on (true) regardless of size
	// heuristics; nil-advice files follow the policy defaults.
	WriteBehind bool

	// Prefetch overrides the policy's readahead depth for this file
	// (0 keeps the policy default; negative disables).
	Prefetch int
}

// Advise registers advice for a file. It may be called before or after the
// file exists; advice applies to subsequent accesses through this PPFS
// instance.
func (fs *FileSystem) Advise(name string, a Advice) error {
	if a.Pattern < PatternUnknown || a.Pattern > PatternRandom {
		return fmt.Errorf("ppfs: advise %q: invalid pattern %d", name, int(a.Pattern))
	}
	if fs.advice == nil {
		fs.advice = make(map[string]Advice)
	}
	fs.advice[name] = a
	return nil
}

// AdviceFor returns the registered advice, if any.
func (fs *FileSystem) AdviceFor(name string) (Advice, bool) {
	a, ok := fs.advice[name]
	return a, ok
}

// prefetchDepth resolves the effective readahead depth for a handle:
// explicit advice wins, then the adaptive classifier, then the policy.
func (h *Handle) prefetchDepth() int {
	fs := h.fs
	if a, ok := fs.advice[h.name]; ok {
		switch {
		case a.Prefetch < 0:
			return 0
		case a.Prefetch > 0:
			return a.Prefetch
		case a.Pattern == PatternSequential:
			if fs.pol.Prefetch > 0 {
				return fs.pol.Prefetch
			}
			return 2
		case a.Pattern == PatternRandom:
			return 0
		}
		return fs.pol.Prefetch
	}
	if fs.pol.Adaptive && fs.class.Classify(h.file, h.node).Pattern != PatternSequential {
		return 0
	}
	return fs.pol.Prefetch
}

// wantWriteBehind resolves whether a write of n bytes should be buffered.
func (h *Handle) wantWriteBehind(n int64) bool {
	fs := h.fs
	if !fs.pol.WriteBehind {
		return false
	}
	if a, ok := fs.advice[h.name]; ok && a.WriteBehind {
		return true
	}
	if n >= fs.pol.DirectWriteBytes {
		return false
	}
	if fs.pol.Adaptive {
		cl := fs.class.Classify(h.file, h.node)
		if cl.Pattern == PatternSequential && cl.MeanBytes >= fs.pol.DirectWriteBytes {
			return false
		}
	}
	return true
}
