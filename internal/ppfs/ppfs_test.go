package ppfs

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/iotrace"
	"repro/internal/mesh"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

type rig struct {
	eng  *sim.Engine
	fs   *FileSystem
	app  *recorder // application-visible events
	phys *recorder // physical events at the PFS layer
}

type recorder struct {
	events []iotrace.Event
}

func (r *recorder) Record(e iotrace.Event) { r.events = append(r.events, e) }

func (r *recorder) ops(op iotrace.Op) []iotrace.Event {
	var out []iotrace.Event
	for _, e := range r.events {
		if e.Op == op {
			out = append(out, e)
		}
	}
	return out
}

func newRig(t *testing.T, pol Policy) *rig {
	t.Helper()
	eng := sim.NewEngine()
	m := mesh.New(mesh.Config{
		Cols: 6, Rows: 6,
		SWLatency: 100 * sim.Microsecond, HopLatency: 1 * sim.Microsecond,
		BWBytesPerS: 10e6,
	})
	cfg := pfs.DefaultConfig()
	cfg.IONodes = 4
	under, err := pfs.New(eng, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	phys := &recorder{}
	under.SetRecorder(phys)
	fs, err := New(eng, under, pol)
	if err != nil {
		t.Fatal(err)
	}
	app := &recorder{}
	fs.SetRecorder(app)
	return &rig{eng: eng, fs: fs, app: app, phys: phys}
}

func (r *rig) run(t *testing.T, fn func(p *sim.Process)) {
	t.Helper()
	r.eng.Spawn("test", fn)
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBehindCompletesFast(t *testing.T) {
	r := newRig(t, DefaultPolicy())
	var dur sim.Time
	r.run(t, func(p *sim.Process) {
		h, err := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		if err != nil {
			t.Fatal(err)
		}
		t0 := p.Now()
		if _, err := h.Write(p, 2048); err != nil {
			t.Fatal(err)
		}
		dur = p.Now() - t0
		if err := h.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	// A buffered 2 KB write costs overhead + memcpy, well under a disk
	// positioning time.
	if dur > 2*sim.Millisecond {
		t.Fatalf("buffered write took %v", dur)
	}
	st := r.fs.Stats()
	if st.BufferedWrites != 1 {
		t.Fatalf("stats %+v", st)
	}
	// The data physically landed by close.
	info, _ := r.fs.Stat("f")
	if info.Size != 2048 {
		t.Fatalf("physical size %d", info.Size)
	}
}

func TestAggregationCoalescesExtents(t *testing.T) {
	r := newRig(t, DefaultPolicy())
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		// 64 sequential 2 KB writes = 128 KB contiguous.
		for i := 0; i < 64; i++ {
			if _, err := h.Write(p, 2048); err != nil {
				t.Fatal(err)
			}
		}
		h.Close(p)
	})
	st := r.fs.Stats()
	if st.BufferedWrites != 64 {
		t.Fatalf("buffered %d", st.BufferedWrites)
	}
	// 128 KB in few large extents, not 64 small ones.
	if st.Flushes > 4 {
		t.Fatalf("%d physical flushes for 64 coalescible writes", st.Flushes)
	}
	if st.MeanFlushExtent() < 32*1024 {
		t.Fatalf("mean flush extent %d", st.MeanFlushExtent())
	}
	// Physical trace agrees.
	for _, e := range r.phys.ops(iotrace.OpWrite) {
		if e.Bytes < 32*1024 {
			t.Fatalf("small physical write %d bytes survived aggregation", e.Bytes)
		}
	}
}

func TestNoAggregationKeepsExtentsSeparate(t *testing.T) {
	pol := DefaultPolicy()
	pol.Aggregation = false
	r := newRig(t, pol)
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		for i := 0; i < 8; i++ {
			h.Write(p, 2048)
		}
		h.Close(p)
	})
	if st := r.fs.Stats(); st.Flushes != 8 {
		t.Fatalf("flushes %d, want 8 without aggregation", st.Flushes)
	}
}

func TestReadDrainsBufferedWrites(t *testing.T) {
	r := newRig(t, DefaultPolicy())
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		h.Write(p, 4096)
		h.Seek(p, 0, pfs.SeekStart)
		if n, err := h.Read(p, 4096); err != nil || n != 4096 {
			t.Fatalf("read-back: n=%d err=%v", n, err)
		}
	})
	if st := r.fs.Stats(); st.Drains == 0 {
		t.Fatal("read did not drain")
	}
}

func TestDirectWritesBypassBuffer(t *testing.T) {
	r := newRig(t, DefaultPolicy())
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		if _, err := h.Write(p, 256*1024); err != nil { // >= stripe: direct
			t.Fatal(err)
		}
	})
	st := r.fs.Stats()
	if st.DirectWrites != 1 || st.BufferedWrites != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheHitOnRereadAndInvalidation(t *testing.T) {
	r := newRig(t, DefaultPolicy())
	r.run(t, func(p *sim.Process) {
		if _, err := r.fs.Preload("f", 1<<20); err != nil {
			t.Fatal(err)
		}
		h, err := r.fs.Open(p, 0, "f", iotrace.ModeUnix)
		if err != nil {
			t.Fatal(err)
		}
		t0 := p.Now()
		h.Read(p, 8192)
		cold := p.Now() - t0

		h.Seek(p, 0, pfs.SeekStart)
		t1 := p.Now()
		h.Read(p, 8192)
		warm := p.Now() - t1
		if warm*5 > cold {
			t.Fatalf("warm read %v not much faster than cold %v", warm, cold)
		}

		// A write to the same range invalidates; the next read misses.
		missesBefore := r.fs.Stats().CacheMisses
		h.Seek(p, 0, pfs.SeekStart)
		h.Write(p, 8192)
		h.Seek(p, 0, pfs.SeekStart)
		h.Read(p, 8192)
		if r.fs.Stats().CacheMisses == missesBefore {
			t.Fatal("write did not invalidate cached blocks")
		}
	})
}

func TestPrefetchOverlapsSequentialReads(t *testing.T) {
	pol := DefaultPolicy()
	pol.WriteBehind = false
	pol.Aggregation = false
	r := newRig(t, pol)
	r.run(t, func(p *sim.Process) {
		r.fs.Preload("f", 2<<20)
		h, _ := r.fs.Open(p, 0, "f", iotrace.ModeUnix)
		// Sequential stream of block-sized reads with compute between: the
		// prefetcher should hide most fetch latency after warmup.
		for i := 0; i < 16; i++ {
			if _, err := h.Read(p, 64*1024); err != nil {
				t.Fatal(err)
			}
			p.Sleep(100 * sim.Millisecond) // compute to overlap with
		}
	})
	st := r.fs.Stats()
	if st.Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
	if st.PrefetchHits == 0 && st.CacheMisses >= 16 {
		t.Fatalf("prefetching ineffective: %+v", st)
	}
}

func TestLargeReadsBypassCache(t *testing.T) {
	r := newRig(t, DefaultPolicy())
	r.run(t, func(p *sim.Process) {
		r.fs.Preload("f", 4<<20)
		h, _ := r.fs.Open(p, 0, "f", iotrace.ModeUnix)
		if _, err := h.Read(p, 1<<20); err != nil { // >= BypassBytes
			t.Fatal(err)
		}
	})
	if got := r.fs.Stats().CacheMisses; got != 0 {
		t.Fatalf("bypass read caused %d block fetches", got)
	}
}

func TestEOFSemanticsMatchPFS(t *testing.T) {
	r := newRig(t, DefaultPolicy())
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		h.Write(p, 1000)
		h.Seek(p, 0, pfs.SeekStart)
		if n, err := h.Read(p, 5000); err != nil || n != 1000 {
			t.Fatalf("short read: n=%d err=%v", n, err)
		}
		if n, err := h.Read(p, 10); !errors.Is(err, pfs.ErrEOF) || n != 0 {
			t.Fatalf("eof: n=%d err=%v", n, err)
		}
	})
}

func TestSeekIsClientLocal(t *testing.T) {
	r := newRig(t, DefaultPolicy())
	var dur sim.Time
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		h.Write(p, 2048)
		t0 := p.Now()
		if _, err := h.Seek(p, 1<<20, pfs.SeekStart); err != nil {
			t.Fatal(err)
		}
		dur = p.Now() - t0
	})
	if dur > 1*sim.Millisecond {
		t.Fatalf("PPFS seek took %v (should be client-local)", dur)
	}
	// Seeks never reach the physical layer in cached mode.
	if got := len(r.phys.ops(iotrace.OpSeek)); got != 0 {
		t.Fatalf("%d physical seeks", got)
	}
}

func TestLsizeIncludesBufferedBytes(t *testing.T) {
	r := newRig(t, DefaultPolicy())
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		h.Write(p, 3000)
		size, err := h.Lsize(p)
		if err != nil || size != 3000 {
			t.Fatalf("lsize %d %v", size, err)
		}
	})
}

func TestAsyncReadThroughPolicyLayer(t *testing.T) {
	r := newRig(t, DefaultPolicy())
	r.run(t, func(p *sim.Process) {
		r.fs.Preload("f", 8<<20)
		h, _ := r.fs.Open(p, 0, "f", iotrace.ModeUnix)
		ar, err := h.ReadAsync(p, 2<<20)
		if err != nil {
			t.Fatal(err)
		}
		p.Sleep(5 * sim.Second)
		if n, err := ar.Wait(p); err != nil || n != 2<<20 {
			t.Fatalf("wait: n=%d err=%v", n, err)
		}
		if !ar.Done() || ar.Bytes() != 2<<20 {
			t.Fatal("async state wrong")
		}
	})
	if got := len(r.app.ops(iotrace.OpAsyncRead)); got != 1 {
		t.Fatalf("app async events %d", got)
	}
	if got := len(r.app.ops(iotrace.OpIOWait)); got != 1 {
		t.Fatalf("app iowait events %d", got)
	}
}

func TestDelegatedModesPassThrough(t *testing.T) {
	r := newRig(t, DefaultPolicy())
	r.run(t, func(p *sim.Process) {
		h, err := r.fs.Create(p, 0, "rec", iotrace.ModeUnix)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(p, 4096)
		h.Close(p)
		hr, err := r.fs.OpenRecord(p, 0, "rec", 1024)
		if err != nil {
			t.Fatal(err)
		}
		if hr.Mode() != iotrace.ModeRecord {
			t.Fatalf("mode %v", hr.Mode())
		}
		if n, err := hr.Read(p, 1024); err != nil || n != 1024 {
			t.Fatalf("record read: n=%d err=%v", n, err)
		}
		if _, err := hr.Read(p, 999); !errors.Is(err, pfs.ErrRecordLength) {
			t.Fatalf("record length not enforced through ppfs: %v", err)
		}
	})
}

func TestSetIOModeDrainsAndSwitches(t *testing.T) {
	r := newRig(t, DefaultPolicy())
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		h.Write(p, 2048) // buffered
		if err := h.SetIOMode(p, iotrace.ModeRecord, 2048); err != nil {
			t.Fatal(err)
		}
		if n, err := h.Read(p, 2048); err != nil || n != 2048 {
			t.Fatalf("record read after switch: n=%d err=%v", n, err)
		}
	})
}

func TestSynchronizedSmallWritesMuchCheaperThanPFS(t *testing.T) {
	// The §5.2 mechanism in miniature: 8 nodes each write 2 KB to a shared
	// file at disjoint offsets simultaneously. On raw PFS the atomicity
	// token serializes positioning-dominated writes; on PPFS the writes
	// return at memcpy cost and flush as aggregated extents.
	elapsed := func(usePPFS bool) sim.Time {
		r := newRig(t, DefaultPolicy())
		var fsi workload.FS = workload.WrapPFS(r.fs.Under())
		if usePPFS {
			fsi = r.fs
		}
		// Application-visible completion: when the last writer finishes,
		// not when background flushers go idle.
		var end sim.Time
		r.eng.Spawn("setup", func(p *sim.Process) {
			h0, err := fsi.Create(p, 0, "shared", iotrace.ModeUnix)
			if err != nil {
				t.Fatal(err)
			}
			handles := []workload.Handle{h0}
			for node := 1; node < 8; node++ {
				h, err := fsi.Open(p, node, "shared", iotrace.ModeUnix)
				if err != nil {
					t.Fatal(err)
				}
				handles = append(handles, h)
			}
			for node := 0; node < 8; node++ {
				node := node
				r.eng.Spawn(fmt.Sprintf("w%d", node), func(p *sim.Process) {
					for it := 0; it < 10; it++ {
						handles[node].Seek(p, int64(node*100_000+it*2048), pfs.SeekStart)
						handles[node].Write(p, 2048)
					}
					if p.Now() > end {
						end = p.Now()
					}
				})
			}
		})
		if err := r.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	raw, layered := elapsed(false), elapsed(true)
	if layered*2 > raw {
		t.Fatalf("PPFS (%v) not clearly cheaper than PFS (%v)", layered, raw)
	}
}

func TestClassifierPatterns(t *testing.T) {
	c := NewClassifier()
	// Sequential stream.
	for i := int64(0); i < 10; i++ {
		c.Observe(1, 0, iotrace.OpRead, i*100, 100)
	}
	if got := c.Classify(1, 0); got.Pattern != PatternSequential {
		t.Fatalf("sequential classified as %v", got.Pattern)
	}
	// Strided stream: constant gap.
	for i := int64(0); i < 10; i++ {
		c.Observe(2, 0, iotrace.OpWrite, i*1000, 100)
	}
	if got := c.Classify(2, 0); got.Pattern != PatternStrided {
		t.Fatalf("strided classified as %v", got.Pattern)
	}
	// Random stream.
	offs := []int64{500, 12, 9000, 4, 777, 123456, 42, 8888}
	for _, o := range offs {
		c.Observe(3, 0, iotrace.OpRead, o, 10)
	}
	if got := c.Classify(3, 0); got.Pattern != PatternRandom {
		t.Fatalf("random classified as %v", got.Pattern)
	}
	// Too few accesses: unknown.
	c.Observe(4, 0, iotrace.OpRead, 0, 10)
	if got := c.Classify(4, 0); got.Pattern != PatternUnknown {
		t.Fatalf("short stream classified as %v", got.Pattern)
	}
	if got := c.Classify(99, 9); got.Pattern != PatternUnknown {
		t.Fatalf("unseen stream classified as %v", got.Pattern)
	}
	if c.Streams() != 4 {
		t.Fatalf("streams %d", c.Streams())
	}
}

func TestClassifierReadWriteMix(t *testing.T) {
	c := NewClassifier()
	for i := int64(0); i < 8; i++ {
		c.Observe(1, 0, iotrace.OpRead, i*100, 100)
	}
	for i := int64(8); i < 10; i++ {
		c.Observe(1, 0, iotrace.OpWrite, i*100, 100)
	}
	cl := c.Classify(1, 0)
	if cl.ReadFraction != 0.8 {
		t.Fatalf("read fraction %f", cl.ReadFraction)
	}
	if cl.MeanBytes != 100 || cl.Accesses != 10 {
		t.Fatalf("classification %+v", cl)
	}
}

func TestAdaptivePrefetchOnlyOnSequential(t *testing.T) {
	pol := DefaultPolicy()
	pol.Adaptive = true
	pol.WriteBehind = false
	pol.Aggregation = false
	r := newRig(t, pol)
	r.run(t, func(p *sim.Process) {
		r.fs.Preload("f", 8<<20)
		h, _ := r.fs.Open(p, 0, "f", iotrace.ModeUnix)
		rng := sim.NewRNG(1)
		// Random reads: classifier should suppress prefetch.
		for i := 0; i < 12; i++ {
			h.Seek(p, rng.Int63n(7<<20), pfs.SeekStart)
			h.Read(p, 4096)
		}
	})
	if got := r.fs.Stats().Prefetches; got != 0 {
		t.Fatalf("adaptive mode prefetched %d blocks on a random stream", got)
	}
}

func TestPolicyValidation(t *testing.T) {
	bad := []Policy{
		{Aggregation: true},                  // aggregation without write-behind
		{Prefetch: 2},                        // prefetch without cache
		{CacheBlocks: -1},                    // negative
		{CacheBlocks: 4, BlockSize: -1},      // negative block size
		{WriteBehind: true, Prefetch: -1},    // negative prefetch
		{FlushInterval: -1 * sim.Second},     // negative interval
		{FlushHighWater: -5, Prefetch: 0},    // negative high water
		{CacheBlocks: 1, BlockSize: -64},     // negative block size again
		{Aggregation: true, Prefetch: 1},     // two violations
		{Prefetch: 1, CacheBlocks: 0},        // explicit zero cache
		{WriteBehind: true, CacheBlocks: -3}, // negative cache
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %d accepted: %+v", i, p)
		}
	}
	if err := DefaultPolicy().Validate(); err != nil {
		t.Errorf("default policy invalid: %v", err)
	}
	if err := PassthroughPolicy().Validate(); err != nil {
		t.Errorf("passthrough policy invalid: %v", err)
	}
}

func TestBlockCacheLRU(t *testing.T) {
	c := newBlockCache(2)
	a := c.insert(blockKey{1, 0}, blockReady, nil)
	_ = a
	c.insert(blockKey{1, 1}, blockReady, nil)
	c.lookup(blockKey{1, 0}) // promote block 0
	c.insert(blockKey{1, 2}, blockReady, nil)
	if c.lookup(blockKey{1, 1}) != nil {
		t.Fatal("LRU victim survived")
	}
	if c.lookup(blockKey{1, 0}) == nil || c.lookup(blockKey{1, 2}) == nil {
		t.Fatal("wrong entries evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len %d", c.len())
	}
}

func TestBlockCachePendingNotEvicted(t *testing.T) {
	c := newBlockCache(1)
	comp := sim.NewCompletion("x")
	c.insert(blockKey{1, 0}, blockPending, comp)
	c.insert(blockKey{1, 1}, blockReady, nil)
	if b := c.lookup(blockKey{1, 0}); b == nil || b.state != blockPending {
		t.Fatal("pending block evicted")
	}
}

func TestBlockCacheDrop(t *testing.T) {
	c := newBlockCache(4)
	c.insert(blockKey{1, 0}, blockReady, nil)
	c.drop(blockKey{1, 0})
	if c.lookup(blockKey{1, 0}) != nil {
		t.Fatal("dropped block still cached")
	}
	c.drop(blockKey{9, 9}) // no-op
}

func TestAggregationCombinesDisjointWritesIntoSweeps(t *testing.T) {
	// The actual §5.2 shape: many nodes write small records at *disjoint*
	// offsets of a shared file. Aggregation cannot merge them into one
	// extent, but it batches them into one scatter-gather sweep per I/O
	// node touched.
	r := newRig(t, DefaultPolicy())
	const writers = 8
	r.eng.Spawn("setup", func(p *sim.Process) {
		h0, err := r.fs.Create(p, 0, "shared", iotrace.ModeUnix)
		if err != nil {
			t.Fatal(err)
		}
		handles := []workload.Handle{h0}
		for node := 1; node < writers; node++ {
			h, err := r.fs.Open(p, node, "shared", iotrace.ModeUnix)
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
		for node := 0; node < writers; node++ {
			node := node
			r.eng.Spawn(fmt.Sprintf("w%d", node), func(p *sim.Process) {
				// Disjoint regions, 256 KB apart (stripe = 64 KB).
				handles[node].Seek(p, int64(node)*256*1024, pfs.SeekStart)
				for i := 0; i < 4; i++ {
					if _, err := handles[node].Write(p, 2048); err != nil {
						t.Errorf("write: %v", err)
					}
				}
			})
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := r.fs.Stats()
	if st.BufferedWrites != 32 {
		t.Fatalf("buffered %d", st.BufferedWrites)
	}
	// 8 regions land on 8 distinct stripes/I/O nodes (4 I/O nodes in the
	// rig, 2 stripes each): expect sweeps well below 32.
	if st.Flushes >= 16 {
		t.Fatalf("%d sweeps for 32 disjoint writes", st.Flushes)
	}
	if st.FlushedBytes != 32*2048 {
		t.Fatalf("flushed %d bytes", st.FlushedBytes)
	}
	// Physical events reflect aggregated sweeps, not 2 KB requests.
	for _, e := range r.phys.ops(iotrace.OpWrite) {
		if e.Bytes < 4096 {
			t.Fatalf("physical write of %d bytes escaped aggregation", e.Bytes)
		}
	}
}

func TestAdviseSequentialEnablesPrefetchOnAdaptive(t *testing.T) {
	pol := DefaultPolicy()
	pol.Adaptive = true
	pol.WriteBehind = false
	pol.Aggregation = false
	r := newRig(t, pol)
	if err := r.fs.Advise("f", Advice{Pattern: PatternSequential}); err != nil {
		t.Fatal(err)
	}
	r.run(t, func(p *sim.Process) {
		r.fs.Preload("f", 4<<20)
		h, _ := r.fs.Open(p, 0, "f", iotrace.ModeUnix)
		// Even before the classifier has seen enough accesses, advice
		// triggers readahead.
		h.Read(p, 64*1024)
		h.Read(p, 64*1024)
	})
	if got := r.fs.Stats().Prefetches; got == 0 {
		t.Fatal("advice did not enable prefetch")
	}
}

func TestAdviseRandomSuppressesPrefetch(t *testing.T) {
	pol := DefaultPolicy()
	pol.WriteBehind = false
	pol.Aggregation = false
	r := newRig(t, pol)
	if err := r.fs.Advise("f", Advice{Pattern: PatternRandom}); err != nil {
		t.Fatal(err)
	}
	r.run(t, func(p *sim.Process) {
		r.fs.Preload("f", 4<<20)
		h, _ := r.fs.Open(p, 0, "f", iotrace.ModeUnix)
		for i := 0; i < 8; i++ {
			h.Read(p, 64*1024) // sequential stream, but advice says random
		}
	})
	if got := r.fs.Stats().Prefetches; got != 0 {
		t.Fatalf("advice random still prefetched %d blocks", got)
	}
}

func TestAdvisePrefetchDepthOverride(t *testing.T) {
	pol := DefaultPolicy()
	pol.WriteBehind = false
	pol.Aggregation = false
	pol.Prefetch = 1
	r := newRig(t, pol)
	if err := r.fs.Advise("f", Advice{Prefetch: 4}); err != nil {
		t.Fatal(err)
	}
	r.run(t, func(p *sim.Process) {
		r.fs.Preload("f", 8<<20)
		h, _ := r.fs.Open(p, 0, "f", iotrace.ModeUnix)
		h.Read(p, 64*1024)
	})
	if got := r.fs.Stats().Prefetches; got != 4 {
		t.Fatalf("prefetches %d, want 4 (advised depth)", got)
	}
}

func TestAdviseForcedWriteBehind(t *testing.T) {
	r := newRig(t, DefaultPolicy())
	if err := r.fs.Advise("f", Advice{WriteBehind: true}); err != nil {
		t.Fatal(err)
	}
	r.run(t, func(p *sim.Process) {
		h, _ := r.fs.Create(p, 0, "f", iotrace.ModeUnix)
		// A write at/above DirectWriteBytes would normally bypass; advice
		// forces buffering.
		if _, err := h.Write(p, 128*1024); err != nil {
			t.Fatal(err)
		}
		h.Close(p)
	})
	st := r.fs.Stats()
	if st.BufferedWrites != 1 || st.DirectWrites != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestAdviseValidationAndLookup(t *testing.T) {
	r := newRig(t, DefaultPolicy())
	if err := r.fs.Advise("f", Advice{Pattern: Pattern(99)}); err == nil {
		t.Fatal("invalid pattern accepted")
	}
	if _, ok := r.fs.AdviceFor("f"); ok {
		t.Fatal("invalid advice registered")
	}
	if err := r.fs.Advise("f", Advice{Pattern: PatternSequential, Prefetch: 3}); err != nil {
		t.Fatal(err)
	}
	if a, ok := r.fs.AdviceFor("f"); !ok || a.Prefetch != 3 {
		t.Fatalf("advice %+v %v", a, ok)
	}
}

// Property: with aggregation, the extent list is always sorted,
// non-overlapping, non-adjacent, and conserves buffered bytes... bytes
// conservation holds only without overlapping writes, so the generator
// spaces extents to avoid overlap.
func TestExtentMergeInvariantProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		r := newRigQuiet()
		fb := r.fs.buffer("f")
		var want int64
		for _, v := range raw {
			off := int64(v) * 3 // spacing 3, lengths 1-3: adjacency happens, overlap not
			n := int64(v%3) + 1
			r.fs.addExtent(fb, off, n, 0)
			want += n
		}
		var got int64
		for i, e := range fb.extents {
			if e.end <= e.start {
				return false
			}
			if i > 0 && e.start < fb.extents[i-1].end {
				return false // overlap or disorder
			}
			got += e.end - e.start
		}
		// Duplicate raw values create overlapping writes, which merge and
		// shrink the byte count; only require got <= want and fb.bytes
		// accounting to match the inserted total.
		return got <= want && fb.bytes == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// newRigQuiet builds a ppfs instance without a testing.T (for property
// functions).
func newRigQuiet() *rig {
	eng := sim.NewEngine()
	m := mesh.New(mesh.Config{
		Cols: 6, Rows: 6,
		SWLatency: 100 * sim.Microsecond, HopLatency: 1 * sim.Microsecond,
		BWBytesPerS: 10e6,
	})
	cfg := pfs.DefaultConfig()
	cfg.IONodes = 4
	under, _ := pfs.New(eng, m, cfg)
	fs, _ := New(eng, under, DefaultPolicy())
	return &rig{eng: eng, fs: fs}
}
