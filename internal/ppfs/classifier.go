package ppfs

import (
	"repro/internal/iotrace"
)

// Pattern is the classifier's verdict on one access stream — the automatic
// access-pattern classification §10 proposes for adaptive prefetching.
type Pattern int

// Access patterns.
const (
	PatternUnknown Pattern = iota
	PatternSequential
	PatternStrided
	PatternRandom
)

var patternNames = [...]string{"unknown", "sequential", "strided", "random"}

// String names the pattern.
func (p Pattern) String() string {
	if p < 0 || int(p) >= len(patternNames) {
		return "invalid"
	}
	return patternNames[p]
}

// Classification summarizes one stream: its spatial pattern and read/write
// mix.
type Classification struct {
	Pattern      Pattern
	Accesses     int64
	ReadFraction float64 // fraction of accesses that were reads
	MeanBytes    int64   // mean request size
}

// streamKey identifies an access stream: one node's accesses to one file.
type streamKey struct {
	file iotrace.FileID
	node int
}

// streamState is the classifier's running view of one stream.
type streamState struct {
	started    bool
	lastOff    int64
	lastEnd    int64
	lastStride int64

	seq     int64
	strided int64
	random  int64

	reads  int64
	writes int64
	bytes  int64
}

// Classifier learns access patterns from the request stream. It is the
// model's realization of the paper's closing direction: "general, adaptive
// prefetching methods that can learn to hide input/output latency by
// automatically classifying and predicting access patterns" (§10).
type Classifier struct {
	streams map[streamKey]*streamState
}

// NewClassifier creates an empty classifier.
func NewClassifier() *Classifier {
	return &Classifier{streams: make(map[streamKey]*streamState)}
}

// Observe feeds one data access into the classifier.
func (c *Classifier) Observe(file iotrace.FileID, node int, op iotrace.Op, off, n int64) {
	if op != iotrace.OpRead && op != iotrace.OpAsyncRead && op != iotrace.OpWrite {
		return
	}
	key := streamKey{file, node}
	s := c.streams[key]
	if s == nil {
		s = &streamState{}
		c.streams[key] = s
	}
	if op == iotrace.OpWrite {
		s.writes++
	} else {
		s.reads++
	}
	s.bytes += n
	if s.started {
		switch {
		case off == s.lastEnd:
			s.seq++
		case off-s.lastOff != 0 && off-s.lastOff == s.lastStride:
			s.strided++
		default:
			s.random++
		}
		s.lastStride = off - s.lastOff
	}
	s.started = true
	s.lastOff = off
	s.lastEnd = off + n
}

// Classify reports the stream's pattern. Streams with fewer than four
// accesses are PatternUnknown; otherwise the pattern with a qualifying
// majority wins (sequential at >= 60%, strided at >= 50%), defaulting to
// random.
func (c *Classifier) Classify(file iotrace.FileID, node int) Classification {
	s := c.streams[streamKey{file, node}]
	if s == nil {
		return Classification{Pattern: PatternUnknown}
	}
	total := s.reads + s.writes
	cl := Classification{Accesses: total}
	if total > 0 {
		cl.ReadFraction = float64(s.reads) / float64(total)
		cl.MeanBytes = s.bytes / total
	}
	transitions := s.seq + s.strided + s.random
	if total < 4 || transitions == 0 {
		cl.Pattern = PatternUnknown
		return cl
	}
	switch {
	case float64(s.seq)/float64(transitions) >= 0.6:
		cl.Pattern = PatternSequential
	case float64(s.strided)/float64(transitions) >= 0.5:
		cl.Pattern = PatternStrided
	default:
		cl.Pattern = PatternRandom
	}
	return cl
}

// Streams returns the number of distinct streams observed.
func (c *Classifier) Streams() int { return len(c.streams) }
