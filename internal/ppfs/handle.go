package ppfs

import (
	"fmt"

	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Handle is one node's PPFS descriptor. For M_UNIX and M_ASYNC files with
// policies enabled it manages its own file pointer and routes data through
// the policy layer; the shared-pointer and record modes delegate to the
// native handle.
type Handle struct {
	fs    *FileSystem
	under *pfs.Handle
	node  int
	name  string
	file  iotrace.FileID
	mode  iotrace.AccessMode

	offset int64
	closed bool
}

// Mode returns the handle's access mode.
func (h *Handle) Mode() iotrace.AccessMode { return h.mode }

// Offset returns the policy layer's file pointer (cached modes) or the
// native pointer (delegated modes).
func (h *Handle) Offset() int64 {
	if h.cached() {
		return h.offset
	}
	return h.under.Offset()
}

// cached reports whether the policy layer mediates this handle's data path.
func (h *Handle) cached() bool {
	if h.mode != iotrace.ModeUnix && h.mode != iotrace.ModeAsync {
		return false
	}
	return h.fs.pol.WriteBehind || h.fs.cache != nil
}

// size returns the file's logical size: the physical extent plus anything
// still sitting in the write buffer.
func (h *Handle) size() int64 {
	info, _ := h.fs.under.Stat(h.name)
	size := info.Size
	for _, e := range h.fs.buffer(h.name).extents {
		if e.end > size {
			size = e.end
		}
	}
	return size
}

// Write implements workload.Handle.
func (h *Handle) Write(p *sim.Process, n int64) (int64, error) {
	if h.closed {
		return 0, pfs.ErrClosed
	}
	if n < 0 {
		return 0, pfs.ErrBadRequest
	}
	if !h.cached() {
		start := p.Now()
		done, err := h.under.Write(p, n)
		h.fs.class.Observe(h.file, h.node, iotrace.OpWrite, h.under.Offset()-done, done)
		h.fs.record(h.node, iotrace.OpWrite, h.file, h.under.Offset()-done, done, start, h.mode)
		return done, err
	}

	fs := h.fs
	start := p.Now()
	off := h.offset
	p.Sleep(fs.under.Config().Cost.ClientOverhead)
	fs.class.Observe(h.file, h.node, iotrace.OpWrite, off, n)
	h.invalidate(off, n)

	// Explicit advice, the adaptive classifier, and the policy defaults
	// decide (in that order) whether this write is buffered.
	writeBehind := h.wantWriteBehind(n)
	fb := fs.buffer(h.name)
	if writeBehind {
		fs.copyCost(p, n)
		fs.addExtent(fb, off, n, h.node)
		fs.stats.BufferedWrites++
		fs.scheduleFlush(fb)
	} else {
		fs.drain(p, fb)
		if _, err := fs.under.Access(p, h.node, h.name, iotrace.OpWrite, off, n); err != nil {
			return 0, err
		}
		fs.stats.DirectWrites++
	}
	h.offset = off + n
	fs.record(h.node, iotrace.OpWrite, h.file, off, n, start, h.mode)
	return n, nil
}

// Read implements workload.Handle.
func (h *Handle) Read(p *sim.Process, n int64) (int64, error) {
	if h.closed {
		return 0, pfs.ErrClosed
	}
	if n < 0 {
		return 0, pfs.ErrBadRequest
	}
	if !h.cached() {
		start := p.Now()
		done, err := h.under.Read(p, n)
		h.fs.class.Observe(h.file, h.node, iotrace.OpRead, h.under.Offset()-done, done)
		h.fs.record(h.node, iotrace.OpRead, h.file, h.under.Offset()-done, done, start, h.mode)
		return done, err
	}
	start := p.Now()
	done, err := h.readAt(p, h.offset, n)
	h.fs.record(h.node, iotrace.OpRead, h.file, h.offset, done, start, h.mode)
	h.offset += done
	return done, err
}

// readAt is the cached-mode read path: drain conflicting buffered writes,
// then serve from the block cache (fetching and prefetching as the policy
// directs) or stream large requests around it.
func (h *Handle) readAt(p *sim.Process, off, n int64) (int64, error) {
	fs := h.fs
	p.Sleep(fs.under.Config().Cost.ClientOverhead)
	fs.class.Observe(h.file, h.node, iotrace.OpRead, off, n)

	fb := fs.buffer(h.name)
	if fb.bytes > 0 {
		fs.drain(p, fb)
	}
	info, _ := fs.under.Stat(h.name)
	if off >= info.Size {
		return 0, pfs.ErrEOF
	}
	if off+n > info.Size {
		n = info.Size - off
	}
	if n == 0 {
		return 0, nil
	}

	if fs.cache == nil || n >= fs.pol.BypassBytes {
		// Stream directly; no cache pollution.
		if _, err := fs.under.Access(p, h.node, h.name, iotrace.OpRead, off, n); err != nil {
			return 0, err
		}
		fs.copyCost(p, n)
		return n, nil
	}

	bs := fs.pol.BlockSize
	for b := off / bs; b*bs < off+n; b++ {
		if err := h.ensureBlock(p, b, info.Size); err != nil {
			return 0, err
		}
	}
	fs.copyCost(p, n)
	fs.stats.CacheHits += n
	h.maybePrefetch(p, off+n, info.Size)
	return n, nil
}

// ensureBlock makes block b resident, fetching it synchronously on a miss
// and waiting on in-flight fetches.
func (h *Handle) ensureBlock(p *sim.Process, b int64, fileSize int64) error {
	fs := h.fs
	key := blockKey{h.file, b}
	if blk := fs.cache.lookup(key); blk != nil {
		if blk.state == blockPending {
			fs.stats.PrefetchHits++
			blk.comp.Await(p)
		}
		return nil
	}
	fs.stats.CacheMisses++
	comp := sim.NewCompletion(fmt.Sprintf("ppfs-fetch:%s:%d", h.name, b))
	blk := fs.cache.insert(key, blockPending, comp)
	bs := fs.pol.BlockSize
	size := bs
	if b*bs+size > fileSize {
		size = fileSize - b*bs
	}
	_, err := fs.under.Access(p, h.node, h.name, iotrace.OpRead, b*bs, size)
	fs.cache.ready(blk)
	comp.Complete(p)
	return err
}

// maybePrefetch issues asynchronous readahead when explicit advice, the
// adaptive classifier, or the unconditional policy calls for it.
func (h *Handle) maybePrefetch(p *sim.Process, from, fileSize int64) {
	fs := h.fs
	depth := h.prefetchDepth()
	if depth == 0 || fs.cache == nil {
		return
	}
	bs := fs.pol.BlockSize
	next := from / bs
	for k := 0; k < depth; k++ {
		b := next + int64(k)
		if b*bs >= fileSize {
			return
		}
		key := blockKey{h.file, b}
		if fs.cache.lookup(key) != nil {
			continue
		}
		comp := sim.NewCompletion(fmt.Sprintf("ppfs-prefetch:%s:%d", h.name, b))
		blk := fs.cache.insert(key, blockPending, comp)
		fs.stats.Prefetches++
		size := bs
		if b*bs+size > fileSize {
			size = fileSize - b*bs
		}
		node, name := h.node, h.name
		fs.eng.Spawn(fmt.Sprintf("ppfs-pf:%s:%d", name, b), func(bg *sim.Process) {
			fs.under.Access(bg, node, name, iotrace.OpRead, b*bs, size)
			fs.cache.ready(blk)
			comp.Complete(bg)
		})
	}
}

// invalidate drops cached blocks overlapping a written range.
func (h *Handle) invalidate(off, n int64) {
	if h.fs.cache == nil || n == 0 {
		return
	}
	bs := h.fs.pol.BlockSize
	for b := off / bs; b*bs < off+n; b++ {
		h.fs.cache.drop(blockKey{h.file, b})
	}
}

// Seek implements workload.Handle. In cached modes PPFS pointers are
// client-local (it is a user-level library), so seeks cost only the client
// overhead — one of the reasons the §5.2 port removed ESCAT's dominant cost.
func (h *Handle) Seek(p *sim.Process, offset int64, whence int) (int64, error) {
	if h.closed {
		return 0, pfs.ErrClosed
	}
	if !h.cached() {
		start := p.Now()
		pos, err := h.under.Seek(p, offset, whence)
		if err != nil {
			return 0, err
		}
		h.fs.record(h.node, iotrace.OpSeek, h.file, pos, 0, start, h.mode)
		return pos, nil
	}
	start := p.Now()
	p.Sleep(h.fs.under.Config().Cost.ClientOverhead)
	base := int64(0)
	switch whence {
	case pfs.SeekStart:
	case pfs.SeekCurrent:
		base = h.offset
	case pfs.SeekEnd:
		base = h.size()
	default:
		return 0, fmt.Errorf("whence %d: %w", whence, pfs.ErrBadSeek)
	}
	target := base + offset
	if target < 0 {
		return 0, fmt.Errorf("offset %d: %w", target, pfs.ErrBadSeek)
	}
	dist := target - h.offset
	if dist < 0 {
		dist = -dist
	}
	h.offset = target
	h.fs.record(h.node, iotrace.OpSeek, h.file, target, dist, start, h.mode)
	return target, nil
}

// ppfsAsync is an in-flight PPFS asynchronous read.
type ppfsAsync struct {
	h      *Handle
	comp   *sim.Completion
	bytes  int64
	err    error
	offset int64
	waited bool
}

// ReadAsync implements workload.Handle: the read proceeds through the cached
// path on a background process.
func (h *Handle) ReadAsync(p *sim.Process, n int64) (workload.AsyncRead, error) {
	if h.closed {
		return nil, pfs.ErrClosed
	}
	if !h.cached() {
		ar, err := h.under.ReadAsync(p, n)
		if err != nil {
			return nil, err
		}
		return ar, nil
	}
	fs := h.fs
	start := p.Now()
	p.Sleep(fs.under.Config().Cost.AsyncIssue)
	off := h.offset
	logical := h.size()
	if off >= logical {
		fs.record(h.node, iotrace.OpAsyncRead, h.file, off, 0, start, h.mode)
		c := sim.NewCompletion("ppfs-aread-eof")
		c.Complete(p)
		return &ppfsAsync{h: h, comp: c, err: pfs.ErrEOF, offset: off}, nil
	}
	if off+n > logical {
		n = logical - off
	}
	h.offset = off + n
	ar := &ppfsAsync{
		h:      h,
		comp:   sim.NewCompletion(fmt.Sprintf("ppfs-aread:%s:%d", h.name, off)),
		bytes:  n,
		offset: off,
	}
	fs.eng.Spawn(fmt.Sprintf("ppfs-aread:%s:%d", h.name, off), func(bg *sim.Process) {
		if _, err := h.readAt(bg, off, n); err != nil {
			ar.err = err
		}
		ar.comp.Complete(bg)
	})
	fs.record(h.node, iotrace.OpAsyncRead, h.file, off, n, start, h.mode)
	return ar, nil
}

// Wait implements workload.AsyncRead.
func (a *ppfsAsync) Wait(p *sim.Process) (int64, error) {
	if a.waited {
		return a.bytes, a.err
	}
	a.waited = true
	start := p.Now()
	a.comp.Await(p)
	a.h.fs.record(a.h.node, iotrace.OpIOWait, a.h.file, a.offset, 0, start, a.h.mode)
	return a.bytes, a.err
}

// Done implements workload.AsyncRead.
func (a *ppfsAsync) Done() bool { return a.comp.Done() }

// Bytes implements workload.AsyncRead.
func (a *ppfsAsync) Bytes() int64 { return a.bytes }

// Lsize implements workload.Handle.
func (h *Handle) Lsize(p *sim.Process) (int64, error) {
	if h.closed {
		return 0, pfs.ErrClosed
	}
	start := p.Now()
	logical := h.size() // includes buffered extents
	if _, err := h.under.Lsize(p); err != nil {
		return 0, err
	}
	h.fs.record(h.node, iotrace.OpLsize, h.file, 0, 0, start, h.mode)
	return logical, nil
}

// Flush implements workload.Handle: drains buffered writes, then flushes the
// native layer.
func (h *Handle) Flush(p *sim.Process) error {
	if h.closed {
		return pfs.ErrClosed
	}
	start := p.Now()
	h.fs.drain(p, h.fs.buffer(h.name))
	if err := h.under.Flush(p); err != nil {
		return err
	}
	h.fs.record(h.node, iotrace.OpFlush, h.file, h.offset, 0, start, h.mode)
	return nil
}

// SetIOMode implements workload.Handle.
func (h *Handle) SetIOMode(p *sim.Process, mode iotrace.AccessMode, recordLen int64) error {
	if h.closed {
		return pfs.ErrClosed
	}
	h.fs.drain(p, h.fs.buffer(h.name))
	if err := h.under.SetIOMode(p, mode, recordLen); err != nil {
		return err
	}
	h.mode = mode
	return nil
}

// Close implements workload.Handle: drains this file's buffered writes, then
// closes the native handle.
func (h *Handle) Close(p *sim.Process) error {
	if h.closed {
		return pfs.ErrClosed
	}
	start := p.Now()
	fb := h.fs.buffer(h.name)
	h.fs.drain(p, fb)
	if err := h.under.Close(p); err != nil {
		return err
	}
	h.closed = true
	fb.openHandles--
	h.fs.record(h.node, iotrace.OpClose, h.file, 0, 0, start, h.mode)
	return nil
}

// Interface check.
var _ workload.Handle = (*Handle)(nil)
