package ppfs

import (
	"repro/internal/iotrace"
	"repro/internal/sim"
)

// blockKey identifies one cache block.
type blockKey struct {
	file  iotrace.FileID
	index int64 // block number within the file
}

// blockState is a cached block's lifecycle.
type blockState int

const (
	blockReady   blockState = iota // data resident
	blockPending                   // fetch in flight; wait on comp
)

// block is one entry of the client block cache.
type block struct {
	key   blockKey
	state blockState
	comp  *sim.Completion // set while pending

	prev, next *block // LRU list
}

// blockCache is a fixed-capacity LRU of file blocks shared by all handles of
// a PPFS instance (PPFS's client cache was likewise shared per node group).
type blockCache struct {
	capacity int
	blocks   map[blockKey]*block
	head     *block // most recently used
	tail     *block // least recently used

	evictions int64
}

func newBlockCache(capacity int) *blockCache {
	return &blockCache{capacity: capacity, blocks: make(map[blockKey]*block)}
}

// lookup returns the block if cached (promoting it), else nil.
func (c *blockCache) lookup(k blockKey) *block {
	b := c.blocks[k]
	if b != nil {
		c.promote(b)
	}
	return b
}

// insert adds a block in the given state, evicting the LRU entry if needed.
// Pending blocks are never evicted (fetches in flight must land somewhere),
// so the cache can transiently exceed capacity under heavy prefetch.
func (c *blockCache) insert(k blockKey, st blockState, comp *sim.Completion) *block {
	if b := c.blocks[k]; b != nil {
		b.state, b.comp = st, comp
		c.promote(b)
		return b
	}
	for len(c.blocks) >= c.capacity {
		victim := c.tail
		for victim != nil && victim.state == blockPending {
			victim = victim.prev
		}
		if victim == nil {
			break // everything pending; overflow transiently
		}
		c.remove(victim)
		delete(c.blocks, victim.key)
		c.evictions++
	}
	b := &block{key: k, state: st, comp: comp}
	c.blocks[k] = b
	c.pushFront(b)
	return b
}

// ready marks a pending block resident.
func (c *blockCache) ready(b *block) {
	b.state = blockReady
	b.comp = nil
}

// drop removes a block (used when a write invalidates cached data).
func (c *blockCache) drop(k blockKey) {
	if b := c.blocks[k]; b != nil && b.state == blockReady {
		c.remove(b)
		delete(c.blocks, k)
	}
}

// len reports the number of cached blocks.
func (c *blockCache) len() int { return len(c.blocks) }

func (c *blockCache) pushFront(b *block) {
	b.prev = nil
	b.next = c.head
	if c.head != nil {
		c.head.prev = b
	}
	c.head = b
	if c.tail == nil {
		c.tail = b
	}
}

func (c *blockCache) remove(b *block) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		c.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		c.tail = b.prev
	}
	b.prev, b.next = nil, nil
}

func (c *blockCache) promote(b *block) {
	c.remove(b)
	c.pushFront(b)
}
