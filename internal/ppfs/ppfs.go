package ppfs

import (
	"fmt"
	"sort"

	"repro/internal/iotrace"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// FileSystem is a PPFS instance: policy state layered over a native PFS.
type FileSystem struct {
	eng   *sim.Engine
	under *pfs.FileSystem
	pol   Policy

	cache   *blockCache
	class   *Classifier
	buffers map[string]*fileBuffer
	advice  map[string]Advice

	rec   iotrace.Recorder
	phase string
	seq   int64

	stats Stats
}

// New layers a PPFS policy instance over a PFS.
func New(eng *sim.Engine, under *pfs.FileSystem, pol Policy) (*FileSystem, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	pol = pol.withDefaults(under.Config().StripeUnit)
	fs := &FileSystem{
		eng:     eng,
		under:   under,
		pol:     pol,
		class:   NewClassifier(),
		buffers: make(map[string]*fileBuffer),
		rec:     iotrace.Discard,
	}
	if pol.CacheBlocks > 0 {
		fs.cache = newBlockCache(pol.CacheBlocks)
	}
	return fs, nil
}

// Policy returns the effective (defaulted) policy.
func (fs *FileSystem) Policy() Policy { return fs.pol }

// Under exposes the physical file system (e.g. to attach a physical-level
// tracer).
func (fs *FileSystem) Under() *pfs.FileSystem { return fs.under }

// Stats returns policy-layer counters.
func (fs *FileSystem) Stats() Stats { return fs.stats }

// Classifier exposes the access-pattern classifier.
func (fs *FileSystem) Classifier() *Classifier { return fs.class }

// SetRecorder installs the application-level trace recorder.
func (fs *FileSystem) SetRecorder(r iotrace.Recorder) {
	if r == nil {
		r = iotrace.Discard
	}
	fs.rec = r
}

// SetPhase labels application-level and physical-level events.
func (fs *FileSystem) SetPhase(name string) {
	fs.phase = name
	fs.under.SetPhase(name)
}

// Phase returns the current phase label.
func (fs *FileSystem) Phase() string { return fs.phase }

// Preload implements workload.FS.
func (fs *FileSystem) Preload(name string, size int64) (pfs.FileInfo, error) {
	return fs.under.Preload(name, size)
}

// ReserveIDs implements workload.FS.
func (fs *FileSystem) ReserveIDs(n int) { fs.under.ReserveIDs(n) }

// Stat implements workload.FS.
func (fs *FileSystem) Stat(name string) (pfs.FileInfo, bool) { return fs.under.Stat(name) }

// record captures one application-visible operation.
func (fs *FileSystem) record(node int, op iotrace.Op, file iotrace.FileID,
	off, bytes int64, start sim.Time, mode iotrace.AccessMode) {
	fs.seq++
	fs.rec.Record(iotrace.Event{
		Seq: fs.seq, Node: node, Op: op, File: file,
		Offset: off, Bytes: bytes, Start: start, End: fs.eng.Now(),
		Mode: mode, Phase: fs.phase,
	})
}

// copyCost charges the client memory-copy time for n bytes.
func (fs *FileSystem) copyCost(p *sim.Process, n int64) {
	p.Sleep(sim.Time(float64(n) / fs.pol.CopyBytesPerS * float64(sim.Second)))
}

// Create implements workload.FS.
func (fs *FileSystem) Create(p *sim.Process, node int, name string, mode iotrace.AccessMode) (workload.Handle, error) {
	start := p.Now()
	uh, err := fs.under.Create(p, node, name, mode)
	if err != nil {
		return nil, err
	}
	h := fs.newHandle(p, uh, node, name, mode, start)
	return h, nil
}

// Open implements workload.FS.
func (fs *FileSystem) Open(p *sim.Process, node int, name string, mode iotrace.AccessMode) (workload.Handle, error) {
	start := p.Now()
	uh, err := fs.under.Open(p, node, name, mode)
	if err != nil {
		return nil, err
	}
	return fs.newHandle(p, uh, node, name, mode, start), nil
}

// OpenRecord implements workload.FS.
func (fs *FileSystem) OpenRecord(p *sim.Process, node int, name string, recordLen int64) (workload.Handle, error) {
	start := p.Now()
	uh, err := fs.under.OpenRecord(p, node, name, recordLen)
	if err != nil {
		return nil, err
	}
	return fs.newHandle(p, uh, node, name, iotrace.ModeRecord, start), nil
}

func (fs *FileSystem) newHandle(p *sim.Process, uh *pfs.Handle, node int, name string,
	mode iotrace.AccessMode, start sim.Time) *Handle {
	fb := fs.buffer(name)
	fb.openHandles++
	info, _ := fs.under.Stat(name)
	fs.record(node, iotrace.OpOpen, info.ID, 0, 0, start, mode)
	return &Handle{fs: fs, under: uh, node: node, name: name, file: info.ID, mode: mode}
}

// fileBuffer is the write-behind state for one file.
type fileBuffer struct {
	name        string
	extents     []extent
	bytes       int64
	flushing    bool
	timerArmed  bool
	openHandles int
	waiters     []*sim.Process
}

// extent is one buffered write range [start, end), attributed to the node
// that produced it (physical flushes charge that node's mesh path).
type extent struct {
	start, end int64
	node       int
}

func (fs *FileSystem) buffer(name string) *fileBuffer {
	fb := fs.buffers[name]
	if fb == nil {
		fb = &fileBuffer{name: name}
		fs.buffers[name] = fb
	}
	return fb
}

// addExtent buffers a write. With aggregation, overlapping or adjacent
// extents coalesce into one; without, each write stays its own extent (still
// asynchronous, but physically small).
func (fs *FileSystem) addExtent(fb *fileBuffer, off, n int64, node int) {
	fb.bytes += n
	e := extent{start: off, end: off + n, node: node}
	if !fs.pol.Aggregation {
		fb.extents = append(fb.extents, e)
		return
	}
	// Insert sorted, then merge neighbors.
	i := sort.Search(len(fb.extents), func(i int) bool { return fb.extents[i].start >= e.start })
	fb.extents = append(fb.extents, extent{})
	copy(fb.extents[i+1:], fb.extents[i:])
	fb.extents[i] = e
	merged := fb.extents[:0]
	for _, cur := range fb.extents {
		if n := len(merged); n > 0 && cur.start <= merged[n-1].end {
			if cur.end > merged[n-1].end {
				merged[n-1].end = cur.end
			}
			continue
		}
		merged = append(merged, cur)
	}
	fb.extents = merged
}

// scheduleFlush starts a background flusher or arms the linger timer.
func (fs *FileSystem) scheduleFlush(fb *fileBuffer) {
	if fb.bytes >= fs.pol.FlushHighWater {
		if !fb.flushing {
			fb.flushing = true
			fs.eng.Spawn("ppfs-flush:"+fb.name, func(p *sim.Process) { fs.runFlush(p, fb) })
		}
		return
	}
	if !fb.timerArmed {
		fb.timerArmed = true
		fs.eng.SpawnAt("ppfs-timer:"+fb.name, fs.pol.FlushInterval, func(p *sim.Process) {
			fb.timerArmed = false
			if fb.bytes > 0 && !fb.flushing {
				fb.flushing = true
				fs.runFlush(p, fb)
			}
		})
	}
}

// runFlush pushes every buffered extent of fb to the file system, then wakes
// drain waiters. It runs with fb.flushing held. With aggregation, the whole
// pending batch goes out as scatter-gather sweeps (one per I/O node) — the
// global request aggregation of §5.2; without, each extent is written
// individually (still asynchronous, but physically small).
func (fs *FileSystem) runFlush(p *sim.Process, fb *fileBuffer) {
	for len(fb.extents) > 0 {
		if fs.pol.Aggregation {
			batch := fb.extents
			fb.extents = nil
			gext := make([]pfs.Extent, len(batch))
			var n int64
			var node int
			for i, e := range batch {
				gext[i] = pfs.Extent{Start: e.start, End: e.end}
				n += e.end - e.start
				node = e.node
			}
			// fb.bytes stays up until the physical writes land, so drain
			// waiters cannot observe a flush-in-flight as "done".
			written, sweeps, err := fs.under.WriteGather(p, node, fb.name, gext)
			if err != nil {
				panic(fmt.Sprintf("ppfs: aggregated flush of %q failed: %v", fb.name, err))
			}
			fb.bytes -= n
			fs.stats.Flushes += int64(sweeps)
			fs.stats.FlushedBytes += written
			continue
		}
		e := fb.extents[0]
		fb.extents = fb.extents[1:]
		n := e.end - e.start
		if _, err := fs.under.Access(p, e.node, fb.name, iotrace.OpWrite, e.start, n); err != nil {
			panic(fmt.Sprintf("ppfs: flush of %q failed: %v", fb.name, err))
		}
		fb.bytes -= n
		fs.stats.Flushes++
		fs.stats.FlushedBytes += n
	}
	fb.flushing = false
	waiters := fb.waiters
	fb.waiters = nil
	for _, w := range waiters {
		p.Wake(w)
	}
}

// drain synchronously empties fb's buffer (reads, closes, lsize, and direct
// writes that would conflict call it).
func (fs *FileSystem) drain(p *sim.Process, fb *fileBuffer) {
	if fb.bytes == 0 && !fb.flushing {
		return
	}
	fs.stats.Drains++
	for fb.bytes > 0 || fb.flushing {
		if !fb.flushing {
			fb.flushing = true
			fs.eng.Spawn("ppfs-drain:"+fb.name, func(fp *sim.Process) { fs.runFlush(fp, fb) })
		}
		fb.waiters = append(fb.waiters, p)
		p.Park("ppfs-drain:" + fb.name)
	}
}

// Interface check.
var _ workload.FS = (*FileSystem)(nil)
